#include "sim/stats_observer.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "../support/scenario.hpp"
#include "sched/edf_scheduler.hpp"

namespace eadvfs::sim {
namespace {

using test::job;

task::Job tagged(task::JobId id, task::TaskId task, Time arrival,
                 Time relative_deadline, Work wcet) {
  task::Job j = job(id, arrival, relative_deadline, wcet);
  j.task_id = task;
  return j;
}

TEST(StatsObserver, CountsPerTaskOutcomes) {
  StatsObserver stats;
  stats.on_release(tagged(0, 0, 0.0, 10.0, 1.0));
  stats.on_release(tagged(1, 0, 10.0, 10.0, 1.0));
  stats.on_release(tagged(2, 1, 0.0, 5.0, 1.0));
  stats.on_complete(tagged(0, 0, 0.0, 10.0, 1.0), 4.0);
  stats.on_miss(tagged(1, 0, 10.0, 10.0, 1.0), 20.0);
  stats.on_complete(tagged(2, 1, 0.0, 5.0, 1.0), 2.0);

  EXPECT_EQ(stats.task(0).released, 2u);
  EXPECT_EQ(stats.task(0).completed, 1u);
  EXPECT_EQ(stats.task(0).missed, 1u);
  EXPECT_DOUBLE_EQ(stats.task(0).miss_rate(), 0.5);
  EXPECT_EQ(stats.task(1).completed, 1u);
  EXPECT_DOUBLE_EQ(stats.task(1).miss_rate(), 0.0);
}

TEST(StatsObserver, ResponseTimeAndMargin) {
  StatsObserver stats;
  const task::Job j = tagged(0, 0, 2.0, 10.0, 1.0);  // window [2, 12]
  stats.on_release(j);
  stats.on_complete(j, 7.0);  // response 5, margin (12-7)/10 = 0.5
  EXPECT_DOUBLE_EQ(stats.task(0).response_time.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.task(0).window_margin.mean(), 0.5);
  ASSERT_EQ(stats.response_times().size(), 1u);
  EXPECT_DOUBLE_EQ(stats.response_times()[0], 5.0);
}

TEST(StatsObserver, LateCompletionCountedSeparately) {
  StatsObserver stats;
  const task::Job j = tagged(0, 0, 0.0, 10.0, 1.0);
  stats.on_release(j);
  stats.on_miss(j, 10.0);
  stats.on_complete(j, 13.0);  // finished late (kContinueLate semantics)
  EXPECT_EQ(stats.task(0).missed, 1u);
  EXPECT_EQ(stats.task(0).completed, 0u);
  EXPECT_EQ(stats.task(0).completed_late, 1u);
  // Margin is negative for late completions: (10-13)/10.
  EXPECT_DOUBLE_EQ(stats.task(0).window_margin.mean(), -0.3);
}

TEST(StatsObserver, TotalAggregatesAcrossTasks) {
  StatsObserver stats;
  for (task::TaskId t = 0; t < 3; ++t) {
    const task::Job j = tagged(t, t, 0.0, 10.0, 1.0);
    stats.on_release(j);
    stats.on_complete(j, 1.0 + t);
  }
  const TaskStats total = stats.total();
  EXPECT_EQ(total.released, 3u);
  EXPECT_EQ(total.completed, 3u);
  EXPECT_DOUBLE_EQ(total.response_time.mean(), 2.0);  // (1+2+3)/3
}

TEST(StatsObserver, EndToEndWithEngine) {
  test::Scenario s;
  task::Task t;
  t.id = 4;
  t.period = 10.0;
  t.relative_deadline = 10.0;
  t.wcet = 2.0;
  s.task_set = task::TaskSet({t});
  s.source = std::make_shared<energy::ConstantSource>(5.0);
  s.capacity = 100.0;
  s.config.horizon = 50.0;

  StatsObserver stats;
  auto source = s.source;
  energy::EnergyStorage storage = energy::EnergyStorage::ideal(s.capacity);
  proc::Processor processor(s.table);
  energy::OraclePredictor predictor(source);
  sched::EdfScheduler edf;
  task::JobReleaser releaser(s.task_set, s.config.horizon);
  Engine engine(s.config, *source, storage, processor, predictor, edf, releaser);
  engine.observers().add(stats);
  (void)engine.run();

  // 5 releases at 0,10,...,40, each completed after exactly 2 time units.
  EXPECT_EQ(stats.task(4).released, 5u);
  EXPECT_EQ(stats.task(4).completed, 5u);
  EXPECT_NEAR(stats.task(4).response_time.mean(), 2.0, 1e-9);
  EXPECT_NEAR(stats.task(4).window_margin.mean(), 0.8, 1e-9);
}

}  // namespace
}  // namespace eadvfs::sim
