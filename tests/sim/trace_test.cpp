#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace eadvfs::sim {
namespace {

SegmentRecord segment(Time start, Time end, Energy level_start, Energy level_end,
                      std::optional<task::JobId> job = std::nullopt,
                      std::size_t op = 0) {
  SegmentRecord rec;
  rec.start = start;
  rec.end = end;
  rec.level_start = level_start;
  rec.level_end = level_end;
  rec.job = job;
  rec.op_index = op;
  return rec;
}

TEST(EnergyTraceRecorder, GridCoversHorizonInclusive) {
  EnergyTraceRecorder rec(25.0, 100.0);
  ASSERT_EQ(rec.times().size(), 5u);
  EXPECT_DOUBLE_EQ(rec.times().front(), 0.0);
  EXPECT_DOUBLE_EQ(rec.times().back(), 100.0);
}

TEST(EnergyTraceRecorder, InterpolatesLinearlyWithinSegment) {
  EnergyTraceRecorder rec(10.0, 40.0);
  rec.on_segment(segment(0.0, 40.0, 100.0, 20.0));
  EXPECT_DOUBLE_EQ(rec.levels()[0], 100.0);
  EXPECT_DOUBLE_EQ(rec.levels()[1], 80.0);
  EXPECT_DOUBLE_EQ(rec.levels()[2], 60.0);
  EXPECT_DOUBLE_EQ(rec.levels()[4], 20.0);
}

TEST(EnergyTraceRecorder, HandlesManySmallSegments) {
  EnergyTraceRecorder rec(10.0, 30.0);
  rec.on_segment(segment(0.0, 5.0, 0.0, 5.0));
  rec.on_segment(segment(5.0, 15.0, 5.0, 15.0));
  rec.on_segment(segment(15.0, 30.0, 15.0, 30.0));
  EXPECT_DOUBLE_EQ(rec.levels()[0], 0.0);
  EXPECT_DOUBLE_EQ(rec.levels()[1], 10.0);
  EXPECT_DOUBLE_EQ(rec.levels()[2], 20.0);
  EXPECT_DOUBLE_EQ(rec.levels()[3], 30.0);
}

TEST(EnergyTraceRecorder, SamplesExactlyAtSegmentEnd) {
  EnergyTraceRecorder rec(10.0, 20.0);
  rec.on_segment(segment(0.0, 10.0, 7.0, 3.0));
  EXPECT_DOUBLE_EQ(rec.levels()[1], 3.0);
}

TEST(EnergyTraceRecorder, RejectsBadConstruction) {
  EXPECT_THROW(EnergyTraceRecorder(0.0, 10.0), std::invalid_argument);
  EXPECT_THROW(EnergyTraceRecorder(1.0, -1.0), std::invalid_argument);
}

TEST(ScheduleRecorder, RecordsExecutionSlices) {
  ScheduleRecorder rec;
  rec.on_segment(segment(0.0, 2.0, 0, 0, task::JobId{7}, 1));
  rec.on_segment(segment(5.0, 6.0, 0, 0, task::JobId{8}, 4));
  ASSERT_EQ(rec.slices().size(), 2u);
  EXPECT_EQ(rec.slices()[0].job, 7u);
  EXPECT_EQ(rec.slices()[0].op_index, 1u);
  EXPECT_DOUBLE_EQ(rec.slices()[1].start, 5.0);
}

TEST(ScheduleRecorder, IgnoresIdleSegments) {
  ScheduleRecorder rec;
  rec.on_segment(segment(0.0, 2.0, 0, 0));  // no job
  EXPECT_TRUE(rec.slices().empty());
}

TEST(ScheduleRecorder, MergesSeamlessContinuations) {
  ScheduleRecorder rec;
  rec.on_segment(segment(0.0, 2.0, 0, 0, task::JobId{7}, 1));
  rec.on_segment(segment(2.0, 3.5, 0, 0, task::JobId{7}, 1));
  ASSERT_EQ(rec.slices().size(), 1u);
  EXPECT_DOUBLE_EQ(rec.slices()[0].end, 3.5);
}

TEST(ScheduleRecorder, SpeedChangeBreaksSlices) {
  ScheduleRecorder rec;
  rec.on_segment(segment(0.0, 2.0, 0, 0, task::JobId{7}, 1));
  rec.on_segment(segment(2.0, 3.0, 0, 0, task::JobId{7}, 4));  // new op
  EXPECT_EQ(rec.slices().size(), 2u);
}

TEST(ScheduleRecorder, ExecutedTimeSumsSlices) {
  ScheduleRecorder rec;
  rec.on_segment(segment(0.0, 2.0, 0, 0, task::JobId{7}, 1));
  rec.on_segment(segment(4.0, 7.0, 0, 0, task::JobId{7}, 1));
  rec.on_segment(segment(7.0, 8.0, 0, 0, task::JobId{9}, 1));
  EXPECT_DOUBLE_EQ(rec.executed_time(7), 5.0);
  EXPECT_DOUBLE_EQ(rec.executed_time(9), 1.0);
  EXPECT_DOUBLE_EQ(rec.executed_time(42), 0.0);
}

TEST(ScheduleRecorder, SlicesOfFiltersByJob) {
  ScheduleRecorder rec;
  rec.on_segment(segment(0.0, 1.0, 0, 0, task::JobId{1}, 0));
  rec.on_segment(segment(1.0, 2.0, 0, 0, task::JobId{2}, 0));
  rec.on_segment(segment(3.0, 4.0, 0, 0, task::JobId{1}, 0));
  EXPECT_EQ(rec.slices_of(1).size(), 2u);
  EXPECT_EQ(rec.slices_of(2).size(), 1u);
}

TEST(ScheduleRecorder, TracksOutcomes) {
  ScheduleRecorder rec;
  task::Job done;
  done.id = 1;
  task::Job dead;
  dead.id = 2;
  rec.on_release(done);
  rec.on_release(dead);
  rec.on_complete(done, 5.0);
  rec.on_miss(dead, 9.0);
  ASSERT_EQ(rec.releases().size(), 2u);
  ASSERT_EQ(rec.outcomes().size(), 2u);
  EXPECT_FALSE(rec.outcomes()[0].missed);
  EXPECT_DOUBLE_EQ(rec.outcomes()[0].time, 5.0);
  EXPECT_TRUE(rec.outcomes()[1].missed);
  EXPECT_DOUBLE_EQ(rec.outcomes()[1].time, 9.0);
}

}  // namespace
}  // namespace eadvfs::sim
