/// Unit tests for sim::AuditObserver: hand-fed observer streams, one
/// deliberately broken per invariant class, each of which must be rejected —
/// and the consistent baseline stream, which must be accepted.  These tests
/// bypass the engine entirely so the auditor is exercised as an independent
/// checker, not as a mirror of engine behaviour.

#include "sim/audit.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "proc/frequency_table.hpp"
#include "../support/scenario.hpp"

namespace eadvfs {
namespace {

class AuditObserverTest : public ::testing::Test {
 protected:
  sim::AuditConfig config() const {
    sim::AuditConfig cfg;
    cfg.horizon = 10.0;
    cfg.capacity = 100.0;
    cfg.table = &table_;
    cfg.check_edf_order = true;
    cfg.check_min_frequency = false;
    return cfg;
  }

  /// Segment with self-consistent energies (exact integrals of the two
  /// powers, no overflow/leak) so tests corrupt exactly one thing at a time.
  static sim::SegmentRecord seg(Time start, Time end,
                                std::optional<task::JobId> job, std::size_t op,
                                Power harvest, Power consume,
                                Energy level_start) {
    sim::SegmentRecord s;
    s.start = start;
    s.end = end;
    s.job = job;
    s.op_index = op;
    s.harvest_power = harvest;
    s.consume_power = consume;
    s.harvested = harvest * (end - start);
    s.consumed = consume * (end - start);
    s.level_start = level_start;
    s.level_end = level_start + s.harvested - s.consumed;
    return s;
  }

  /// The baseline stream: job 1 (deadline 8, wcet 2) runs [0, 2) at f_max
  /// (xscale op 4: speed 1.0, 3.2 W) against a 1 W harvest, then idle to the
  /// horizon.  Level: 50 -> 45.6 -> 53.6.
  void feed_clean(sim::AuditObserver& audit) const {
    audit.on_release(test::job(1, 0.0, 8.0, 2.0));
    audit.on_segment(seg(0.0, 2.0, 1, 4, 1.0, 3.2, 50.0));
    audit.on_complete(test::job(1, 0.0, 8.0, 2.0), 2.0);
    audit.on_segment(seg(2.0, 10.0, std::nullopt, 0, 1.0, 0.0, 45.6));
  }

  /// SimulationResult matching feed_clean exactly.
  sim::SimulationResult clean_result() const {
    sim::SimulationResult r;
    r.jobs_released = 1;
    r.jobs_completed = 1;
    r.harvested = 10.0;
    r.consumed = 6.4;
    r.storage_initial = 50.0;
    r.storage_final = 53.6;
    r.busy_time = 2.0;
    r.idle_time = 8.0;
    r.time_at_op.assign(5, 0.0);
    r.time_at_op[4] = 2.0;
    r.end_time = 10.0;
    r.segments = 2;
    return r;
  }

  static bool flags(const sim::AuditObserver& audit, const std::string& inv) {
    for (const auto& v : audit.violations())
      if (v.invariant == inv) return true;
    return false;
  }

  const proc::FrequencyTable table_ = proc::FrequencyTable::xscale();
};

TEST_F(AuditObserverTest, CleanStreamIsAccepted) {
  sim::AuditObserver audit(config());
  feed_clean(audit);
  audit.finalize(clean_result());
  EXPECT_TRUE(audit.ok()) << audit.report();
  EXPECT_EQ(audit.report(), "audit: clean");
}

TEST_F(AuditObserverTest, CoverageGapIsRejected) {
  sim::AuditObserver audit(config());
  audit.on_segment(seg(0.0, 2.0, std::nullopt, 0, 0.0, 0.0, 50.0));
  audit.on_segment(seg(3.0, 10.0, std::nullopt, 0, 0.0, 0.0, 50.0));  // gap.
  EXPECT_FALSE(audit.ok());
  EXPECT_TRUE(flags(audit, "coverage")) << audit.report();
}

TEST_F(AuditObserverTest, StorageLevelJumpBetweenSegmentsIsRejected) {
  sim::AuditObserver audit(config());
  audit.on_segment(seg(0.0, 2.0, std::nullopt, 0, 0.0, 0.0, 50.0));
  // Starts where the previous ended in time, but 5 J appeared from nowhere.
  audit.on_segment(seg(2.0, 10.0, std::nullopt, 0, 0.0, 0.0, 55.0));
  EXPECT_FALSE(audit.ok());
  EXPECT_TRUE(flags(audit, "continuity")) << audit.report();
}

TEST_F(AuditObserverTest, PerSegmentConservationBreakIsRejected) {
  sim::AuditObserver audit(config());
  sim::SegmentRecord s = seg(0.0, 2.0, std::nullopt, 0, 1.0, 0.0, 50.0);
  s.level_end = s.level_start;  // harvested 2 J but the level did not move.
  audit.on_segment(s);
  EXPECT_FALSE(audit.ok());
  EXPECT_TRUE(flags(audit, "energy")) << audit.report();
}

TEST_F(AuditObserverTest, LevelOutsideCapacityIsRejected) {
  sim::AuditObserver audit(config());
  audit.on_segment(seg(0.0, 2.0, std::nullopt, 0, 0.0, 0.0, 150.0));  // > C.
  EXPECT_FALSE(audit.ok());
  EXPECT_TRUE(flags(audit, "bounds")) << audit.report();
}

TEST_F(AuditObserverTest, NegativeEnergyQuantityIsRejected) {
  sim::AuditObserver audit(config());
  sim::SegmentRecord s = seg(0.0, 2.0, std::nullopt, 0, 0.0, 0.0, 50.0);
  s.consumed = -1.0;
  s.level_end = 51.0;  // conservation still "holds" — bounds must catch it.
  audit.on_segment(s);
  EXPECT_FALSE(audit.ok());
  EXPECT_TRUE(flags(audit, "bounds")) << audit.report();
}

TEST_F(AuditObserverTest, ExecutionOfUnreleasedJobIsRejected) {
  sim::AuditObserver audit(config());
  audit.on_segment(seg(0.0, 2.0, 7, 4, 1.0, 3.2, 50.0));  // job 7 never released.
  EXPECT_FALSE(audit.ok());
  EXPECT_TRUE(flags(audit, "ready")) << audit.report();
}

TEST_F(AuditObserverTest, EdfOrderViolationIsRejected) {
  sim::AuditObserver audit(config());
  audit.on_release(test::job(1, 0.0, 8.0, 2.0));
  audit.on_release(test::job(2, 0.0, 4.0, 1.0));  // earlier deadline.
  audit.on_segment(seg(0.0, 2.0, 1, 4, 1.0, 3.2, 50.0));  // runs the later one.
  EXPECT_FALSE(audit.ok());
  EXPECT_TRUE(flags(audit, "edf-order")) << audit.report();
}

TEST_F(AuditObserverTest, ExecutionFromEmptyStorageIsRejected) {
  sim::AuditObserver audit(config());
  audit.on_release(test::job(1, 0.0, 8.0, 2.0));
  // Powers claim execution at 3.2 W from an empty store under a 0.5 W
  // harvest (paper ineq. 3 forbids this); energies kept at zero so only the
  // physics check can fire.
  sim::SegmentRecord s = seg(0.0, 2.0, 1, 4, 0.0, 0.0, 0.0);
  s.harvest_power = 0.5;
  s.consume_power = 3.2;
  audit.on_segment(s);
  EXPECT_FALSE(audit.ok());
  EXPECT_TRUE(flags(audit, "physics")) << audit.report();
}

TEST_F(AuditObserverTest, RunBelowMinimumFeasibleFrequencyIsRejected) {
  sim::AuditConfig cfg = config();
  cfg.check_min_frequency = true;
  sim::AuditObserver audit(cfg);
  // 0.9 units of work, deadline at t=1: ineq. (6) demands speed >= 0.9,
  // i.e. xscale op 4.  Running at op 1 (speed 0.4) is a violation.
  audit.on_release(test::job(1, 0.0, 1.0, 0.9));
  audit.on_segment(seg(0.0, 0.5, 1, 1, 1.0, 0.4, 50.0));
  EXPECT_FALSE(audit.ok());
  EXPECT_TRUE(flags(audit, "min-frequency")) << audit.report();
}

TEST_F(AuditObserverTest, RunAtMinimumFeasibleFrequencyIsAccepted) {
  sim::AuditConfig cfg = config();
  cfg.check_min_frequency = true;
  sim::AuditObserver audit(cfg);
  audit.on_release(test::job(1, 0.0, 1.0, 0.9));
  audit.on_segment(seg(0.0, 0.5, 1, 4, 1.0, 3.2, 50.0));
  EXPECT_TRUE(audit.ok()) << audit.report();
}

TEST_F(AuditObserverTest, ZeroDurationExecutionSegmentIsRejected) {
  sim::AuditObserver audit(config());
  audit.on_release(test::job(1, 0.0, 8.0, 2.0));
  audit.on_segment(seg(0.0, 0.0, 1, 4, 0.0, 0.0, 50.0));
  EXPECT_FALSE(audit.ok());
  EXPECT_TRUE(flags(audit, "coverage")) << audit.report();
}

TEST_F(AuditObserverTest, CompletionOfUnknownJobIsRejected) {
  sim::AuditObserver audit(config());
  audit.on_complete(test::job(9, 0.0, 8.0, 2.0), 0.0);
  EXPECT_FALSE(audit.ok());
  EXPECT_TRUE(flags(audit, "events")) << audit.report();
}

TEST_F(AuditObserverTest, DoubleReleaseIsRejected) {
  sim::AuditObserver audit(config());
  audit.on_release(test::job(1, 0.0, 8.0, 2.0));
  audit.on_release(test::job(1, 0.0, 8.0, 2.0));
  EXPECT_FALSE(audit.ok());
  EXPECT_TRUE(flags(audit, "events")) << audit.report();
}

TEST_F(AuditObserverTest, AggregateMismatchIsRejected) {
  sim::AuditObserver audit(config());
  feed_clean(audit);
  sim::SimulationResult r = clean_result();
  r.consumed += 1.0;  // result claims more than the stream accounts for.
  audit.finalize(r);
  EXPECT_FALSE(audit.ok());
  EXPECT_TRUE(flags(audit, "aggregate")) << audit.report();
}

TEST_F(AuditObserverTest, SegmentCountMismatchIsRejected) {
  sim::AuditObserver audit(config());
  feed_clean(audit);
  sim::SimulationResult r = clean_result();
  r.segments = 5;
  audit.finalize(r);
  EXPECT_FALSE(audit.ok());
  EXPECT_TRUE(flags(audit, "aggregate")) << audit.report();
}

TEST_F(AuditObserverTest, WholeRunConservationBreakIsRejected) {
  sim::AuditObserver audit(config());
  feed_clean(audit);
  sim::SimulationResult r = clean_result();
  r.storage_final += 1.0;
  audit.finalize(r);
  EXPECT_FALSE(audit.ok());
  EXPECT_TRUE(flags(audit, "energy")) << audit.report();
}

TEST_F(AuditObserverTest, JobCounterMismatchIsRejected) {
  sim::AuditObserver audit(config());
  feed_clean(audit);
  sim::SimulationResult r = clean_result();
  r.jobs_completed = 0;
  audit.finalize(r);
  EXPECT_FALSE(audit.ok());
  EXPECT_TRUE(flags(audit, "aggregate")) << audit.report();
}

TEST_F(AuditObserverTest, StreamEndingShortOfHorizonIsRejected) {
  sim::AuditObserver audit(config());
  audit.on_segment(seg(0.0, 2.0, std::nullopt, 0, 0.0, 0.0, 50.0));
  sim::SimulationResult r;
  r.storage_initial = 50.0;
  r.storage_final = 50.0;
  r.idle_time = 2.0;
  r.end_time = 2.0;
  r.segments = 1;
  audit.finalize(r);  // horizon is 10; the stream stops at 2.
  EXPECT_FALSE(audit.ok());
  EXPECT_TRUE(flags(audit, "coverage")) << audit.report();
}

TEST_F(AuditObserverTest, ViolationsBeyondCapAreCountedNotStored) {
  sim::AuditConfig cfg = config();
  cfg.max_recorded = 1;
  sim::AuditObserver audit(cfg);
  audit.on_segment(seg(0.0, 2.0, std::nullopt, 0, 0.0, 0.0, 50.0));
  audit.on_segment(seg(5.0, 6.0, std::nullopt, 0, 0.0, 0.0, 50.0));  // gap 1.
  audit.on_segment(seg(8.0, 9.0, std::nullopt, 0, 0.0, 0.0, 50.0));  // gap 2.
  EXPECT_EQ(audit.violations().size(), 1u);
  EXPECT_EQ(audit.violation_count(), 2u);
  EXPECT_NE(audit.report().find("further violation"), std::string::npos);
}

TEST_F(AuditObserverTest, FinalizeTwiceThrows) {
  sim::AuditObserver audit(config());
  feed_clean(audit);
  audit.finalize(clean_result());
  EXPECT_THROW(audit.finalize(clean_result()), std::logic_error);
}

}  // namespace
}  // namespace eadvfs
