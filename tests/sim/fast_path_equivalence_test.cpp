/// Equivalence of the engine's dispatch paths (docs/PERFORMANCE.md): the
/// devirtualized kernel (Engine::run_as<S> via sched::run_fast /
/// sched::run_devirtualized) must produce exactly the same SimulationResult
/// and the same decision-trace records as the virtual-dispatch reference
/// path (Engine::run()) for every built-in scheduler — including under
/// fault injection and on zero-duration / simultaneous-event edge cases.
/// "Exactly" means byte-identical serialized results and CSV rows: both
/// paths instantiate the same kernel template, so even floating-point
/// round-off must match bit for bit.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "energy/predictor.hpp"
#include "energy/slotted_ewma_predictor.hpp"
#include "energy/solar_source.hpp"
#include "energy/source.hpp"
#include "energy/storage.hpp"
#include "exp/setup.hpp"
#include "obs/decision_trace.hpp"
#include "proc/frequency_table.hpp"
#include "proc/processor.hpp"
#include "sched/factory.hpp"
#include "sched/fast_path.hpp"
#include "sim/config.hpp"
#include "sim/engine.hpp"
#include "sim/fault/profile.hpp"
#include "task/generator.hpp"
#include "task/releaser.hpp"
#include "util/rng.hpp"

namespace eadvfs {
namespace {

const char* const kAllSchedulers[] = {"edf",           "rm",
                                      "lsa",           "ea-dvfs",
                                      "ea-dvfs-static", "greedy-dvfs"};

/// Everything two runs must agree on, flattened to comparable strings.
struct RunArtifacts {
  std::string result_json;
  std::vector<std::string> decision_rows;
};

RunArtifacts artifacts_of(const sim::SimulationResult& result,
                          const std::string& scheduler,
                          const obs::DecisionTraceObserver& trace) {
  RunArtifacts a;
  a.result_json = result.to_json(2);
  a.decision_rows.reserve(trace.records().size());
  for (const sim::DecisionRecord& record : trace.records())
    a.decision_rows.push_back(obs::decision_csv_row(scheduler, 0.0, record));
  return a;
}

void expect_identical(const RunArtifacts& fast, const RunArtifacts& reference,
                      const std::string& label) {
  EXPECT_EQ(fast.result_json, reference.result_json) << label;
  ASSERT_EQ(fast.decision_rows.size(), reference.decision_rows.size()) << label;
  for (std::size_t i = 0; i < fast.decision_rows.size(); ++i)
    ASSERT_EQ(fast.decision_rows[i], reference.decision_rows[i])
        << label << ": decision " << i;
}

// ------------------------------------------------- RunOptions front door

/// One energy-constrained periodic scenario through exp::run_with_options,
/// toggling only `devirtualize`.  Covers the production assembly path
/// (storage/processor/predictor wiring, sched::run_fast dispatch).
RunArtifacts run_periodic(const std::string& scheduler, bool devirtualize,
                          const sim::fault::FaultProfile* fault) {
  energy::SolarSourceConfig solar;
  solar.seed = 17;
  solar.horizon = 2'000.0;

  task::GeneratorConfig gen_cfg;
  gen_cfg.target_utilization = 0.5;
  task::TaskSetGenerator gen(gen_cfg);
  util::Xoshiro256ss rng(23);
  const task::TaskSet set = gen.generate(rng);

  obs::DecisionTraceObserver trace;

  exp::RunOptions opts;
  opts.config.horizon = 2'000.0;
  opts.source = std::make_shared<energy::SolarSource>(solar);
  opts.tasks = &set;
  opts.storage.capacity = 40.0;  // tight: forces energy-driven branches.
  opts.scheduler = scheduler;
  opts.fault = fault;
  opts.observers.push_back(&trace);
  opts.devirtualize = devirtualize;

  const sim::SimulationResult result = exp::run_with_options(opts);
  return artifacts_of(result, scheduler, trace);
}

class FastPathEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(FastPathEquivalence, PeriodicEnergyConstrainedScenario) {
  const std::string scheduler = GetParam();
  const RunArtifacts fast = run_periodic(scheduler, true, nullptr);
  const RunArtifacts reference = run_periodic(scheduler, false, nullptr);
  EXPECT_FALSE(fast.decision_rows.empty());
  expect_identical(fast, reference, scheduler + "/periodic");
}

TEST_P(FastPathEquivalence, MixedFaultProfileScenario) {
  const std::string scheduler = GetParam();
  sim::fault::FaultProfile fault = sim::fault::FaultProfile::parse("mixed");
  fault.seed = 99;
  const RunArtifacts fast = run_periodic(scheduler, true, &fault);
  const RunArtifacts reference = run_periodic(scheduler, false, &fault);
  EXPECT_FALSE(fast.decision_rows.empty());
  expect_identical(fast, reference, scheduler + "/mixed-fault");
}

// ------------------------------------------- direct Engine construction

task::Job make_job(task::JobId id, Time arrival, Time relative_deadline,
                   Work wcet) {
  task::Job j;
  j.id = id;
  j.arrival = arrival;
  j.absolute_deadline = arrival + relative_deadline;
  j.wcet = wcet;
  j.remaining = wcet;
  return j;
}

/// Zero-duration jobs, simultaneous arrivals, and a deadline coinciding with
/// an arrival: the densest event clustering the kernel has to order.
std::vector<task::Job> edge_case_jobs() {
  std::vector<task::Job> jobs;
  jobs.push_back(make_job(0, 0.0, 10.0, 2.0));
  jobs.push_back(make_job(1, 0.0, 10.0, 0.0));   // zero work, same instant.
  jobs.push_back(make_job(2, 5.0, 0.0, 0.0));    // deadline == arrival.
  jobs.push_back(make_job(3, 5.0, 3.0, 1.0));    // arrival == job 2's deadline.
  jobs.push_back(make_job(4, 10.0, 5.0, 4.0));   // arrival == job 0's deadline.
  jobs.push_back(make_job(5, 10.0, 5.0, 4.0));   // duplicate arrival+deadline.
  return jobs;
}

/// Run the edge-case job list through one dispatch path with fresh
/// components.  `use_fast` selects sched::run_fast vs Engine::run().
RunArtifacts run_edges(const std::string& scheduler_name, bool use_fast) {
  const auto source = std::make_shared<energy::ConstantSource>(1.2);
  energy::StorageConfig storage_cfg;
  storage_cfg.capacity = 6.0;  // tight enough to hit empty and full.
  energy::EnergyStorage storage(storage_cfg);
  const proc::FrequencyTable table = proc::FrequencyTable::xscale();
  proc::Processor processor(table, {}, 0.0);
  energy::SlottedEwmaPredictor predictor(energy::SlottedEwmaConfig{});
  std::vector<task::Job> jobs = edge_case_jobs();
  task::JobReleaser releaser(std::move(jobs));
  const auto scheduler = sched::make_scheduler(scheduler_name);

  sim::SimulationConfig cfg;
  cfg.horizon = 30.0;
  obs::DecisionTraceObserver trace;
  sim::Engine engine(cfg, *source, storage, processor, predictor, *scheduler,
                     releaser);
  engine.observers().add(trace);
  const sim::SimulationResult result =
      use_fast ? sched::run_fast(engine, *scheduler) : engine.run();
  return artifacts_of(result, scheduler_name, trace);
}

TEST_P(FastPathEquivalence, ZeroDurationAndSimultaneousEventEdges) {
  const std::string scheduler = GetParam();
  const RunArtifacts fast = run_edges(scheduler, true);
  const RunArtifacts reference = run_edges(scheduler, false);
  EXPECT_FALSE(fast.decision_rows.empty());
  expect_identical(fast, reference, scheduler + "/edges");
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, FastPathEquivalence,
                         ::testing::ValuesIn(kAllSchedulers),
                         [](const auto& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

// -------------------------------------------------- variant front door

TEST(SchedulerVariant, RunDevirtualizedMatchesVirtualRun) {
  for (const char* name : kAllSchedulers) {
    auto run_with_variant = [&](bool devirt) {
      const auto source = std::make_shared<energy::ConstantSource>(1.0);
      energy::StorageConfig storage_cfg;
      storage_cfg.capacity = 10.0;
      energy::EnergyStorage storage(storage_cfg);
      const proc::FrequencyTable table = proc::FrequencyTable::xscale();
      proc::Processor processor(table, {}, 0.0);
      energy::SlottedEwmaPredictor predictor(energy::SlottedEwmaConfig{});
      std::vector<task::Job> jobs = edge_case_jobs();
      task::JobReleaser releaser(std::move(jobs));
      sched::SchedulerVariant variant = sched::make_scheduler_variant(name);
      sim::SimulationConfig cfg;
      cfg.horizon = 30.0;
      sim::Engine engine(cfg, *source, storage, processor, predictor,
                         sched::base_scheduler(variant), releaser);
      return devirt ? sched::run_devirtualized(engine, variant) : engine.run();
    };
    EXPECT_EQ(run_with_variant(true).to_json(), run_with_variant(false).to_json())
        << name;
  }
}

TEST(SchedulerVariant, UnknownNameThrowsWithSuggestion) {
  EXPECT_THROW((void)sched::make_scheduler_variant("ea-dvf"),
               std::invalid_argument);
}

TEST(SchedulerVariant, RunAsRejectsForeignScheduler) {
  const auto source = std::make_shared<energy::ConstantSource>(1.0);
  energy::EnergyStorage storage(energy::StorageConfig{});
  const proc::FrequencyTable table = proc::FrequencyTable::xscale();
  proc::Processor processor(table, {}, 0.0);
  energy::SlottedEwmaPredictor predictor(energy::SlottedEwmaConfig{});
  task::JobReleaser releaser(std::vector<task::Job>{make_job(0, 0.0, 5.0, 1.0)});
  sched::EdfScheduler engine_scheduler;
  sched::EdfScheduler other;
  sim::SimulationConfig cfg;
  cfg.horizon = 10.0;
  sim::Engine engine(cfg, *source, storage, processor, predictor,
                     engine_scheduler, releaser);
  EXPECT_THROW((void)engine.run_as(other), std::logic_error);
}

}  // namespace
}  // namespace eadvfs
