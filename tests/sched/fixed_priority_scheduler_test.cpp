#include "sched/fixed_priority_scheduler.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "../support/scenario.hpp"
#include "sched/edf_scheduler.hpp"

namespace eadvfs::sched {
namespace {

using test::job;
using test::run_scenario;
using test::Scenario;

sim::SchedulingContext context(const std::vector<task::Job>& ready, Time now,
                               const energy::EnergyPredictor& predictor,
                               const proc::FrequencyTable& table) {
  sim::SchedulingContext ctx;
  ctx.now = now;
  ctx.ready = &ready;
  ctx.stored = 100.0;
  ctx.predictor = &predictor;
  ctx.table = &table;
  return ctx;
}

TEST(FixedPriority, PicksShortestRelativeDeadline) {
  FixedPriorityScheduler rm;
  const proc::FrequencyTable table = proc::FrequencyTable::xscale();
  energy::ConstantPredictor predictor(0.0);
  // Job 0: relative deadline 50 (arrived earlier, EDF would pick it).
  // Job 1: relative deadline 10 (higher RM priority).
  std::vector<task::Job> ready = {job(0, 0.0, 50.0, 2.0),
                                  job(1, 30.0, 10.0, 1.0)};
  // EDF order: job1 (abs 40) before job0 (abs 50) here too; craft a real
  // inversion: job0 abs deadline 35 < job1 abs deadline 40, but relative
  // deadlines 35 vs 10.
  ready = {job(0, 0.0, 35.0, 2.0), job(1, 30.0, 10.0, 1.0)};
  const sim::Decision d = rm.decide(context(ready, 30.0, predictor, table));
  EXPECT_EQ(d.job, 1u);  // EDF would choose job 0 (deadline 35 < 40)
  EXPECT_EQ(d.op_index, table.max_index());
}

TEST(FixedPriority, TieBreaksByArrivalThenId) {
  FixedPriorityScheduler rm;
  const proc::FrequencyTable table = proc::FrequencyTable::xscale();
  energy::ConstantPredictor predictor(0.0);
  const std::vector<task::Job> ready = {job(7, 5.0, 20.0, 1.0),
                                        job(3, 0.0, 20.0, 1.0)};
  const sim::Decision d = rm.decide(context(ready, 6.0, predictor, table));
  EXPECT_EQ(d.job, 3u);  // same relative deadline, earlier arrival
}

TEST(FixedPriority, SchedulesClassicRmWorkload) {
  // U = 0.75 < ln 2 bound does not hold, but this specific set (harmonic
  // periods) is RM-schedulable; with ample energy there are no misses.
  Scenario s;
  task::Task t1;
  t1.id = 0;
  t1.period = 10.0;
  t1.relative_deadline = 10.0;
  t1.wcet = 2.5;
  task::Task t2;
  t2.id = 1;
  t2.period = 20.0;
  t2.relative_deadline = 20.0;
  t2.wcet = 10.0;  // U = 0.25 + 0.5 = 0.75, harmonic -> schedulable
  s.task_set = task::TaskSet({t1, t2});
  s.source = std::make_shared<energy::ConstantSource>(0.0);
  s.capacity = 1e9;
  s.config.horizon = 400.0;
  FixedPriorityScheduler rm;
  const auto out = run_scenario(std::move(s), rm);
  EXPECT_EQ(out.result.jobs_missed, 0u);
}

TEST(FixedPriority, MissesWhereEdfSucceeds) {
  // The classic RM-infeasible / EDF-feasible pattern: U just above the RM
  // bound with non-harmonic periods.
  auto make = [] {
    Scenario s;
    task::Task t1;
    t1.id = 0;
    t1.period = 10.0;
    t1.relative_deadline = 10.0;
    t1.wcet = 5.1;
    task::Task t2;
    t2.id = 1;
    t2.period = 14.5;
    t2.relative_deadline = 14.5;
    t2.wcet = 6.0;  // U = 0.51 + 0.414 = 0.924
    s.task_set = task::TaskSet({t1, t2});
    s.source = std::make_shared<energy::ConstantSource>(0.0);
    s.capacity = 1e9;
    s.config.horizon = 600.0;
    return s;
  };
  FixedPriorityScheduler rm;
  const auto rm_out = run_scenario(make(), rm);
  EdfScheduler edf;
  const auto edf_out = run_scenario(make(), edf);
  EXPECT_GT(rm_out.result.jobs_missed, 0u);
  EXPECT_EQ(edf_out.result.jobs_missed, 0u);
}

TEST(FixedPriority, PreemptsLowerPriorityJob) {
  Scenario s;
  // Long low-priority job (relative deadline 100), short high-priority one
  // arriving at t=2.
  s.jobs = {job(0, 0.0, 100.0, 10.0), job(1, 2.0, 5.0, 1.0)};
  s.source = std::make_shared<energy::ConstantSource>(0.0);
  s.capacity = 1e6;
  s.config.horizon = 50.0;
  FixedPriorityScheduler rm;
  const auto out = run_scenario(std::move(s), rm);
  const auto high = out.schedule.slices_of(1);
  ASSERT_EQ(high.size(), 1u);
  EXPECT_NEAR(high[0].start, 2.0, 1e-9);
  EXPECT_NEAR(high[0].end, 3.0, 1e-9);
  EXPECT_EQ(out.result.jobs_completed, 2u);
}

TEST(FixedPriority, NameIsStable) {
  EXPECT_EQ(FixedPriorityScheduler().name(), "RM/DM");
}

}  // namespace
}  // namespace eadvfs::sched
