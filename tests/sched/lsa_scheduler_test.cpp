#include "sched/lsa_scheduler.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "../support/scenario.hpp"

namespace eadvfs::sched {
namespace {

using test::job;
using test::run_scenario;
using test::Scenario;

sim::SchedulingContext context(const std::vector<task::Job>& ready, Time now,
                               Energy stored,
                               const energy::EnergyPredictor& predictor,
                               const proc::FrequencyTable& table) {
  sim::SchedulingContext ctx;
  ctx.now = now;
  ctx.ready = &ready;
  ctx.stored = stored;
  ctx.predictor = &predictor;
  ctx.table = &table;
  return ctx;
}

TEST(LsaScheduler, RunsImmediatelyWhenEnergyIsAmple) {
  LsaScheduler lsa;
  const proc::FrequencyTable table = proc::FrequencyTable::xscale();
  energy::ConstantPredictor predictor(0.0);
  const std::vector<task::Job> ready = {job(1, 0.0, 10.0, 2.0)};
  // Window 10 at P_max 3.2 needs 32; give 100.
  const sim::Decision d =
      lsa.decide(context(ready, 0.0, 100.0, predictor, table));
  EXPECT_EQ(d.kind, sim::Decision::Kind::kRun);
  EXPECT_EQ(d.op_index, 4u);
}

TEST(LsaScheduler, ProcrastinatesUntilS2) {
  LsaScheduler lsa;
  const proc::FrequencyTable table = proc::FrequencyTable::xscale();
  energy::ConstantPredictor predictor(0.0);
  const std::vector<task::Job> ready = {job(1, 0.0, 10.0, 2.0)};
  // Stored 16 = 5 time units at P_max: s2 = 10 - 16/3.2 = 5.
  const sim::Decision d =
      lsa.decide(context(ready, 0.0, 16.0, predictor, table));
  EXPECT_EQ(d.kind, sim::Decision::Kind::kIdle);
  EXPECT_NEAR(d.recheck_at, 5.0, 1e-9);
}

TEST(LsaScheduler, PredictionExtendsTheBudget) {
  LsaScheduler lsa;
  const proc::FrequencyTable table = proc::FrequencyTable::xscale();
  // Predicted 1.6 W harvest adds 16 over the 10-unit window: with stored 16
  // the total 32 covers full power for the whole window -> run now.
  energy::ConstantPredictor predictor(1.6);
  const std::vector<task::Job> ready = {job(1, 0.0, 10.0, 2.0)};
  const sim::Decision d =
      lsa.decide(context(ready, 0.0, 16.0, predictor, table));
  EXPECT_EQ(d.kind, sim::Decision::Kind::kRun);
}

TEST(LsaScheduler, AlwaysFullSpeedOnceStarted) {
  LsaScheduler lsa;
  const proc::FrequencyTable table = proc::FrequencyTable::xscale();
  energy::ConstantPredictor predictor(0.0);
  const std::vector<task::Job> ready = {job(1, 0.0, 10.0, 2.0)};
  for (Energy stored : {5.0, 20.0, 100.0, 1000.0}) {
    const sim::Decision d =
        lsa.decide(context(ready, 9.0, stored, predictor, table));
    if (d.kind == sim::Decision::Kind::kRun) EXPECT_EQ(d.op_index, 4u);
  }
}

TEST(LsaScheduler, PastDeadlineRunsFlatOut) {
  LsaScheduler lsa;
  const proc::FrequencyTable table = proc::FrequencyTable::xscale();
  energy::ConstantPredictor predictor(0.0);
  std::vector<task::Job> ready = {job(1, 0.0, 10.0, 2.0)};
  const sim::Decision d =
      lsa.decide(context(ready, 11.0, 1.0, predictor, table));
  EXPECT_EQ(d.kind, sim::Decision::Kind::kRun);
  EXPECT_EQ(d.op_index, 4u);
}

TEST(LsaScheduler, PaperSection2StartsTaskAtTwelve) {
  // Paper §2: E_C(0)=24, P_S=0.5, τ1=(0,16,4), P_max=8 -> LSA starts at 12.
  Scenario s;
  s.jobs = {job(0, 0.0, 16.0, 4.0)};
  s.source = std::make_shared<energy::ConstantSource>(0.5);
  s.capacity = 1000.0;
  s.initial = 24.0;
  s.table = proc::FrequencyTable::two_speed(8.0);
  s.config.horizon = 25.0;
  LsaScheduler lsa;
  const auto out = run_scenario(std::move(s), lsa);
  ASSERT_FALSE(out.schedule.slices().empty());
  EXPECT_NEAR(out.schedule.slices().front().start, 12.0, 1e-6);
  EXPECT_EQ(out.schedule.slices().front().op_index, 1u);  // full speed
  EXPECT_EQ(out.result.jobs_completed, 1u);
  // The run depletes the storage exactly at the deadline (paper: "the
  // system depletes all energy exactly at time 16").
  EXPECT_NEAR(out.result.storage_final,
              0.5 * (25.0 - 16.0),  // only post-completion harvest remains
              1e-6);
}

TEST(LsaScheduler, PessimisticPredictionDelaysStartButBankCoversIt) {
  // With zero predicted harvest, s2(0) = 16 - 24/8 = 13 and the constant
  // source offers no intermediate wake-ups, so LSA starts at exactly 13 —
  // later than the oracle's 12 — yet the energy banked while idling still
  // lets the job finish in its remaining 3-unit window at full speed.
  Scenario s;
  s.jobs = {job(0, 0.0, 16.0, 4.0)};
  s.source = std::make_shared<energy::ConstantSource>(0.5);
  s.capacity = 1000.0;
  s.initial = 24.0;
  s.table = proc::FrequencyTable::two_speed(8.0);
  s.config.horizon = 25.0;
  s.predictor = std::make_unique<energy::ConstantPredictor>(0.0);
  LsaScheduler lsa;
  const auto out = run_scenario(std::move(s), lsa);
  ASSERT_FALSE(out.schedule.slices().empty());
  EXPECT_NEAR(out.schedule.slices().front().start, 13.0, 1e-6);
  // 4 work in a 3-unit window is infeasible even at full speed -> the job
  // misses (LSA's known failure mode under under-prediction).
  EXPECT_EQ(out.result.jobs_missed, 1u);
}

TEST(LsaScheduler, NameIsStable) {
  EXPECT_EQ(LsaScheduler().name(), "LSA");
}

}  // namespace
}  // namespace eadvfs::sched
