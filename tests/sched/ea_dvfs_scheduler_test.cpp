#include "sched/ea_dvfs_scheduler.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "../support/scenario.hpp"
#include "sched/lsa_scheduler.hpp"

namespace eadvfs::sched {
namespace {

using test::job;
using test::run_scenario;
using test::Scenario;

sim::SchedulingContext context(const std::vector<task::Job>& ready, Time now,
                               Energy stored,
                               const energy::EnergyPredictor& predictor,
                               const proc::FrequencyTable& table) {
  sim::SchedulingContext ctx;
  ctx.now = now;
  ctx.ready = &ready;
  ctx.stored = stored;
  ctx.predictor = &predictor;
  ctx.table = &table;
  return ctx;
}

TEST(EaDvfs, AmpleEnergyRunsAtFullSpeed) {
  // s1 == s2 == now (paper rule 4a): plenty of energy -> f_max.
  EaDvfsScheduler ea;
  const proc::FrequencyTable table = proc::FrequencyTable::xscale();
  energy::ConstantPredictor predictor(0.0);
  const std::vector<task::Job> ready = {job(1, 0.0, 10.0, 2.0)};
  const sim::Decision d = ea.decide(context(ready, 0.0, 100.0, predictor, table));
  EXPECT_EQ(d.kind, sim::Decision::Kind::kRun);
  EXPECT_EQ(d.op_index, 4u);
}

TEST(EaDvfs, ScarceEnergySlowsDownToMinFeasible) {
  EaDvfsScheduler ea;
  const proc::FrequencyTable table = proc::FrequencyTable::xscale();
  energy::ConstantPredictor predictor(0.0);
  // Work 2 into window 10: min feasible speed 0.4 (2/0.15=13.3 > 10,
  // 2/0.4 = 5 <= 10) -> op 1 at 0.4 W.
  // Energy A = 4: sr_n = 4/0.4 = 10 -> s1 = max(0, 10-10) = 0.
  // sr_max = 4/3.2 = 1.25 -> s2 = 8.75.  now=0 in [s1, s2) -> run at op 1.
  const std::vector<task::Job> ready = {job(1, 0.0, 10.0, 2.0)};
  const sim::Decision d = ea.decide(context(ready, 0.0, 4.0, predictor, table));
  EXPECT_EQ(d.kind, sim::Decision::Kind::kRun);
  EXPECT_EQ(d.op_index, 1u);
  EXPECT_NEAR(d.recheck_at, 8.75, 1e-9);  // planned switch to f_max at s2
}

TEST(EaDvfs, VeryScarceEnergyWaitsUntilS1) {
  EaDvfsScheduler ea;
  const proc::FrequencyTable table = proc::FrequencyTable::xscale();
  energy::ConstantPredictor predictor(0.0);
  // A = 2: sr_n = 2/0.4 = 5 -> s1 = max(0, 10-5) = 5 -> idle until 5.
  const std::vector<task::Job> ready = {job(1, 0.0, 10.0, 2.0)};
  const sim::Decision d = ea.decide(context(ready, 0.0, 2.0, predictor, table));
  EXPECT_EQ(d.kind, sim::Decision::Kind::kIdle);
  EXPECT_NEAR(d.recheck_at, 5.0, 1e-9);
}

TEST(EaDvfs, AfterS2SwitchesToFullSpeed) {
  EaDvfsScheduler ea;
  const proc::FrequencyTable table = proc::FrequencyTable::xscale();
  energy::ConstantPredictor predictor(0.0);
  // Same setup as ScarceEnergySlowsDown, but asked at t = 9 (> s2 = 8.75
  // recomputed with the same A): window 1, rem 2 -> infeasible even at
  // f_max -> best effort at f_max.
  const std::vector<task::Job> ready = {job(1, 0.0, 10.0, 2.0)};
  const sim::Decision d = ea.decide(context(ready, 9.0, 4.0, predictor, table));
  EXPECT_EQ(d.kind, sim::Decision::Kind::kRun);
  EXPECT_EQ(d.op_index, 4u);
}

TEST(EaDvfs, InfeasibleWindowRunsBestEffort) {
  EaDvfsScheduler ea;
  const proc::FrequencyTable table = proc::FrequencyTable::xscale();
  energy::ConstantPredictor predictor(0.0);
  const std::vector<task::Job> ready = {job(1, 0.0, 1.0, 2.0)};  // 2 work, 1 window
  const sim::Decision d = ea.decide(context(ready, 0.0, 100.0, predictor, table));
  EXPECT_EQ(d.kind, sim::Decision::Kind::kRun);
  EXPECT_EQ(d.op_index, 4u);
}

TEST(EaDvfs, PastDeadlineRunsFlatOut) {
  EaDvfsScheduler ea;
  const proc::FrequencyTable table = proc::FrequencyTable::xscale();
  energy::ConstantPredictor predictor(0.0);
  const std::vector<task::Job> ready = {job(1, 0.0, 10.0, 2.0)};
  const sim::Decision d = ea.decide(context(ready, 12.0, 5.0, predictor, table));
  EXPECT_EQ(d.kind, sim::Decision::Kind::kRun);
  EXPECT_EQ(d.op_index, 4u);
}

TEST(EaDvfs, MinFeasibleEqualsMaxDegeneratesToLsa) {
  EaDvfsScheduler ea;
  const proc::FrequencyTable table = proc::FrequencyTable::xscale();
  energy::ConstantPredictor predictor(0.0);
  // Work 9 into window 10 needs speed >= 0.9 -> f_max is the only choice;
  // with little energy the policy must procrastinate like LSA (idle until
  // s1 == s2), not claim "ample energy".
  const std::vector<task::Job> ready = {job(1, 0.0, 10.0, 9.0)};
  // A = 16 -> sr_max = 5 -> s1 = s2 = 5.
  const sim::Decision d = ea.decide(context(ready, 0.0, 16.0, predictor, table));
  EXPECT_EQ(d.kind, sim::Decision::Kind::kIdle);
  EXPECT_NEAR(d.recheck_at, 5.0, 1e-9);
}

TEST(EaDvfs, StretchedJobStillMeetsDeadlineEndToEnd) {
  // Low stored energy, no harvest: EA-DVFS must stretch and complete where
  // full-speed-only LSA runs out of energy.
  Scenario s;
  s.jobs = {job(0, 0.0, 20.0, 2.0)};
  s.source = std::make_shared<energy::ConstantSource>(0.0);
  s.capacity = 1000.0;
  s.initial = 2.2;  // 2 work at f_max needs 6.4; at 0.15 speed needs 1.07
  s.config.horizon = 25.0;
  EaDvfsScheduler ea;
  const auto out = run_scenario(std::move(s), ea);
  EXPECT_EQ(out.result.jobs_completed, 1u);
  EXPECT_EQ(out.result.jobs_missed, 0u);
  // It must have spent time at a reduced operating point.
  EXPECT_GT(out.result.time_at_op[0] + out.result.time_at_op[1] +
                out.result.time_at_op[2] + out.result.time_at_op[3],
            0.0);
}

TEST(EaDvfs, SameScenarioDefeatsLsa) {
  auto make = [] {
    Scenario s;
    s.jobs = {job(0, 0.0, 20.0, 2.0)};
    s.source = std::make_shared<energy::ConstantSource>(0.0);
    s.capacity = 1000.0;
    s.initial = 2.2;
    s.config.horizon = 25.0;
    return s;
  };
  EaDvfsScheduler ea;
  const auto ea_out = run_scenario(make(), ea);
  LsaScheduler lsa;
  const auto lsa_out = run_scenario(make(), lsa);
  EXPECT_EQ(ea_out.result.jobs_missed, 0u);
  EXPECT_EQ(lsa_out.result.jobs_missed, 1u);  // 2.2 < 6.4 needed at f_max
}

TEST(EaDvfs, NameIsStable) {
  EXPECT_EQ(EaDvfsScheduler().name(), "EA-DVFS");
}

}  // namespace
}  // namespace eadvfs::sched
