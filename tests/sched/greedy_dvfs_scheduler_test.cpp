#include "sched/greedy_dvfs_scheduler.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "../support/scenario.hpp"

namespace eadvfs::sched {
namespace {

using test::job;
using test::run_scenario;
using test::Scenario;

sim::SchedulingContext context(const std::vector<task::Job>& ready, Time now,
                               Energy stored,
                               const energy::EnergyPredictor& predictor,
                               const proc::FrequencyTable& table) {
  sim::SchedulingContext ctx;
  ctx.now = now;
  ctx.ready = &ready;
  ctx.stored = stored;
  ctx.predictor = &predictor;
  ctx.table = &table;
  return ctx;
}

TEST(GreedyDvfs, AlwaysRunsImmediatelyAtMinFeasibleSpeed) {
  GreedyDvfsScheduler greedy;
  const proc::FrequencyTable table = proc::FrequencyTable::xscale();
  energy::ConstantPredictor predictor(0.0);
  const std::vector<task::Job> ready = {job(1, 0.0, 10.0, 2.0)};
  // Regardless of stored energy the answer is the same: run at 0.4.
  for (Energy stored : {0.0, 5.0, 1e6}) {
    const sim::Decision d =
        greedy.decide(context(ready, 0.0, stored, predictor, table));
    EXPECT_EQ(d.kind, sim::Decision::Kind::kRun);
    EXPECT_EQ(d.op_index, 1u);
  }
}

TEST(GreedyDvfs, InfeasibleWindowFallsBackToMax) {
  GreedyDvfsScheduler greedy;
  const proc::FrequencyTable table = proc::FrequencyTable::xscale();
  energy::ConstantPredictor predictor(0.0);
  const std::vector<task::Job> ready = {job(1, 0.0, 1.0, 5.0)};
  const sim::Decision d =
      greedy.decide(context(ready, 0.0, 100.0, predictor, table));
  EXPECT_EQ(d.op_index, 4u);
}

TEST(GreedyDvfs, StealsSlackFromFutureJob) {
  // The paper's Figure 3 situation in miniature: greedy stretches the first
  // job across the whole window and the second job cannot make it.
  Scenario s;
  s.table = proc::FrequencyTable(
      {{250, 0.25, 1.0}, {1000, 1.0, 8.0}});
  s.jobs = {job(0, 0.0, 16.0, 4.0), job(1, 5.0, 12.0, 1.5)};
  s.source = std::make_shared<energy::ConstantSource>(0.0);
  s.capacity = 1000.0;
  s.initial = 32.0;
  s.config.horizon = 25.0;
  GreedyDvfsScheduler greedy;
  const auto out = run_scenario(std::move(s), greedy);
  // τ1 (deadline 16) hogs the processor at 0.25 speed until 16; τ2's
  // deadline is 17 and needs 1.5 at full speed -> finishes at 17.5: miss.
  EXPECT_EQ(out.result.jobs_missed, 1u);
  EXPECT_EQ(out.result.jobs_completed, 1u);
}

TEST(GreedyDvfs, FineWhenSlackAbounds) {
  Scenario s;
  s.jobs = {job(0, 0.0, 50.0, 2.0), job(1, 10.0, 50.0, 2.0)};
  s.source = std::make_shared<energy::ConstantSource>(1.0);
  s.capacity = 100.0;
  s.config.horizon = 80.0;
  GreedyDvfsScheduler greedy;
  const auto out = run_scenario(std::move(s), greedy);
  EXPECT_EQ(out.result.jobs_missed, 0u);
  EXPECT_EQ(out.result.jobs_completed, 2u);
}

TEST(GreedyDvfs, NameIsStable) {
  EXPECT_EQ(GreedyDvfsScheduler().name(), "Greedy-DVFS");
}

}  // namespace
}  // namespace eadvfs::sched
