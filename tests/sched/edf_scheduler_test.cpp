#include "sched/edf_scheduler.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "../support/scenario.hpp"

namespace eadvfs::sched {
namespace {

using test::job;
using test::run_scenario;
using test::Scenario;

sim::SchedulingContext context(const std::vector<task::Job>& ready, Time now,
                               Energy stored,
                               const energy::EnergyPredictor& predictor,
                               const proc::FrequencyTable& table) {
  sim::SchedulingContext ctx;
  ctx.now = now;
  ctx.ready = &ready;
  ctx.stored = stored;
  ctx.predictor = &predictor;
  ctx.table = &table;
  return ctx;
}

TEST(EdfScheduler, AlwaysRunsFrontAtMaxSpeed) {
  EdfScheduler edf;
  const proc::FrequencyTable table = proc::FrequencyTable::xscale();
  energy::ConstantPredictor predictor(0.0);
  const std::vector<task::Job> ready = {job(3, 0.0, 10.0, 2.0),
                                        job(5, 0.0, 20.0, 2.0)};
  const sim::Decision d = edf.decide(context(ready, 0.0, 0.0, predictor, table));
  EXPECT_EQ(d.kind, sim::Decision::Kind::kRun);
  EXPECT_EQ(d.job, 3u);
  EXPECT_EQ(d.op_index, 4u);  // f_max
}

TEST(EdfScheduler, IgnoresEnergyState) {
  EdfScheduler edf;
  const proc::FrequencyTable table = proc::FrequencyTable::xscale();
  energy::ConstantPredictor predictor(0.0);
  const std::vector<task::Job> ready = {job(1, 0.0, 10.0, 2.0)};
  const sim::Decision rich =
      edf.decide(context(ready, 0.0, 1e6, predictor, table));
  const sim::Decision poor =
      edf.decide(context(ready, 0.0, 0.0, predictor, table));
  EXPECT_EQ(rich.kind, poor.kind);
  EXPECT_EQ(rich.op_index, poor.op_index);
}

TEST(EdfScheduler, MeetsAllDeadlinesWithAmpleEnergy) {
  // Classic EDF optimality on a schedulable set, energy removed from the
  // picture by a huge full storage.
  Scenario s;
  task::Task t1;
  t1.id = 0;
  t1.period = 10.0;
  t1.relative_deadline = 10.0;
  t1.wcet = 3.0;
  task::Task t2;
  t2.id = 1;
  t2.period = 15.0;
  t2.relative_deadline = 15.0;
  t2.wcet = 5.0;  // U = 0.3 + 0.333 = 0.633
  s.task_set = task::TaskSet({t1, t2});
  s.source = std::make_shared<energy::ConstantSource>(0.0);
  s.capacity = 1e9;
  s.config.horizon = 300.0;
  EdfScheduler edf;
  const auto out = run_scenario(std::move(s), edf);
  EXPECT_EQ(out.result.jobs_missed, 0u);
  EXPECT_GT(out.result.jobs_completed, 0u);
}

TEST(EdfScheduler, NameIsStable) {
  EXPECT_EQ(EdfScheduler().name(), "EDF");
}

}  // namespace
}  // namespace eadvfs::sched
