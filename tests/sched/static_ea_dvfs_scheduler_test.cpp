#include "sched/static_ea_dvfs_scheduler.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "../support/scenario.hpp"
#include "energy/solar_source.hpp"
#include "sched/ea_dvfs_scheduler.hpp"
#include "task/generator.hpp"
#include "util/rng.hpp"

namespace eadvfs::sched {
namespace {

using test::job;
using test::run_scenario;
using test::Scenario;

sim::SchedulingContext context(const std::vector<task::Job>& ready, Time now,
                               Energy stored,
                               const energy::EnergyPredictor& predictor,
                               const proc::FrequencyTable& table) {
  sim::SchedulingContext ctx;
  ctx.now = now;
  ctx.ready = &ready;
  ctx.stored = stored;
  ctx.predictor = &predictor;
  ctx.table = &table;
  return ctx;
}

TEST(StaticEaDvfs, FirstDecisionMatchesDynamicAlgorithm) {
  // At the first decision for a fresh job the static plan and the dynamic
  // computation are the same formula over the same numbers.
  const proc::FrequencyTable table = proc::FrequencyTable::xscale();
  energy::ConstantPredictor predictor(0.0);
  const std::vector<task::Job> ready = {job(1, 0.0, 10.0, 2.0)};
  StaticEaDvfsScheduler static_ea;
  EaDvfsScheduler dynamic_ea;
  for (Energy stored : {2.0, 4.0, 100.0}) {
    StaticEaDvfsScheduler fresh;  // no cached plan
    const sim::Decision a = fresh.decide(context(ready, 0.0, stored, predictor, table));
    const sim::Decision b =
        dynamic_ea.decide(context(ready, 0.0, stored, predictor, table));
    EXPECT_EQ(a.kind, b.kind) << stored;
    if (a.kind == sim::Decision::Kind::kRun) EXPECT_EQ(a.op_index, b.op_index);
  }
}

TEST(StaticEaDvfs, PlanIsFrozenAfterFirstDecision) {
  // The static variant must NOT react to an energy windfall after planning.
  const proc::FrequencyTable table = proc::FrequencyTable::xscale();
  energy::ConstantPredictor predictor(0.0);
  const std::vector<task::Job> ready = {job(1, 0.0, 10.0, 2.0)};
  StaticEaDvfsScheduler sched;
  // A = 2 -> plan: idle until s1 = 5 (see the dynamic scheduler's test).
  const sim::Decision first = sched.decide(context(ready, 0.0, 2.0, predictor, table));
  ASSERT_EQ(first.kind, sim::Decision::Kind::kIdle);
  // Energy jumps to 100; a dynamic policy would now run at f_max, but the
  // frozen plan still says idle-until-5.
  const sim::Decision second =
      sched.decide(context(ready, 1.0, 100.0, predictor, table));
  EXPECT_EQ(second.kind, sim::Decision::Kind::kIdle);
  EXPECT_NEAR(second.recheck_at, 5.0, 1e-9);
}

TEST(StaticEaDvfs, ResetClearsPlans) {
  const proc::FrequencyTable table = proc::FrequencyTable::xscale();
  energy::ConstantPredictor predictor(0.0);
  const std::vector<task::Job> ready = {job(1, 0.0, 10.0, 2.0)};
  StaticEaDvfsScheduler sched;
  (void)sched.decide(context(ready, 0.0, 2.0, predictor, table));
  sched.reset();
  // Re-planned with rich energy: now runs immediately.
  const sim::Decision d = sched.decide(context(ready, 0.0, 100.0, predictor, table));
  EXPECT_EQ(d.kind, sim::Decision::Kind::kRun);
}

TEST(StaticEaDvfs, FollowsStretchedThenFullSpeedPlanEndToEnd) {
  // Single job, no harvest, A = 20: sr_n = 20 at the 0.25-speed point, so
  // s1 = max(0, 16 - 20) = 0 and s2 = 16 - 20/8 = 13.5.  The plan runs
  // stretched on [0, 13.5) (3.375 work), then full speed: the remaining
  // 0.625 work finishes at 14.125, using 13.5 + 5 = 18.5 <= 20 energy.
  Scenario s;
  s.jobs = {job(0, 0.0, 16.0, 4.0)};
  s.source = std::make_shared<energy::ConstantSource>(0.0);
  s.capacity = 1000.0;
  s.initial = 20.0;
  s.table = proc::FrequencyTable({{250, 0.25, 1.0}, {1000, 1.0, 8.0}});
  s.config.horizon = 20.0;
  StaticEaDvfsScheduler sched;
  const auto out = run_scenario(std::move(s), sched);
  EXPECT_EQ(out.result.jobs_completed, 1u);
  const auto slices = out.schedule.slices_of(0);
  ASSERT_GE(slices.size(), 2u);
  EXPECT_NEAR(slices.front().start, 0.0, 1e-6);
  EXPECT_EQ(slices.front().op_index, 0u);
  EXPECT_NEAR(slices.front().end, 13.5, 1e-6);
  EXPECT_EQ(slices.back().op_index, 1u);
  EXPECT_NEAR(slices.back().end, 14.125, 1e-6);
  EXPECT_NEAR(out.result.consumed, 18.5, 1e-6);
}

TEST(StaticEaDvfs, StaticAndDynamicVariantsLandInTheSameBallpark) {
  // Empirically the one-shot plan and the re-planning variant trade wins:
  // re-planning reacts to prediction error and preemption, but a frozen
  // plan can be luckier when the prediction was right the first time.
  // Neither dominates; this test pins the *similarity* (same algorithm
  // family) rather than a false dominance property, and the scheduler-zoo
  // bench reports the actual measured gap.
  std::size_t dynamic_missed = 0, static_missed = 0;
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull, 6ull}) {
    task::GeneratorConfig gen_cfg;
    gen_cfg.target_utilization = 0.5;
    task::TaskSetGenerator gen(gen_cfg);
    util::Xoshiro256ss rng(seed);
    const task::TaskSet set = gen.generate(rng);
    energy::SolarSourceConfig solar;
    solar.seed = seed ^ 0x57A7;
    solar.horizon = 2000.0;
    const auto source = std::make_shared<const energy::SolarSource>(solar);
    for (const bool dynamic : {true, false}) {
      test::Scenario s;
      s.task_set = set;
      s.source = source;
      s.capacity = 70.0;
      s.config.horizon = 2000.0;
      std::unique_ptr<sim::Scheduler> sched_ptr;
      if (dynamic) {
        sched_ptr = std::make_unique<EaDvfsScheduler>();
      } else {
        sched_ptr = std::make_unique<StaticEaDvfsScheduler>();
      }
      const auto out = test::run_scenario(std::move(s), *sched_ptr);
      (dynamic ? dynamic_missed : static_missed) += out.result.jobs_missed;
    }
  }
  const auto lo = static_cast<double>(std::min(dynamic_missed, static_missed));
  const auto hi = static_cast<double>(std::max(dynamic_missed, static_missed));
  EXPECT_LE(hi, 1.5 * lo + 10.0)
      << "dynamic=" << dynamic_missed << " static=" << static_missed;
}

TEST(StaticEaDvfs, NameIsStable) {
  EXPECT_EQ(StaticEaDvfsScheduler().name(), "EA-DVFS-static");
}

}  // namespace
}  // namespace eadvfs::sched
