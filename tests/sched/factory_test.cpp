#include "sched/factory.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace eadvfs::sched {
namespace {

TEST(SchedulerFactory, BuildsEveryCanonicalName) {
  for (const std::string& name : scheduler_names()) {
    const auto scheduler = make_scheduler(name);
    ASSERT_NE(scheduler, nullptr) << name;
    EXPECT_FALSE(scheduler->name().empty());
  }
}

TEST(SchedulerFactory, CanonicalNamesMapToExpectedAlgorithms) {
  EXPECT_EQ(make_scheduler("edf")->name(), "EDF");
  EXPECT_EQ(make_scheduler("lsa")->name(), "LSA");
  EXPECT_EQ(make_scheduler("ea-dvfs")->name(), "EA-DVFS");
  EXPECT_EQ(make_scheduler("greedy-dvfs")->name(), "Greedy-DVFS");
}

TEST(SchedulerFactory, AcceptsAliases) {
  EXPECT_EQ(make_scheduler("eadvfs")->name(), "EA-DVFS");
  EXPECT_EQ(make_scheduler("ea_dvfs")->name(), "EA-DVFS");
  EXPECT_EQ(make_scheduler("greedy")->name(), "Greedy-DVFS");
  EXPECT_EQ(make_scheduler("greedy_dvfs")->name(), "Greedy-DVFS");
}

TEST(SchedulerFactory, IsCaseInsensitive) {
  EXPECT_EQ(make_scheduler("LSA")->name(), "LSA");
  EXPECT_EQ(make_scheduler("EA-DVFS")->name(), "EA-DVFS");
  EXPECT_EQ(make_scheduler("Edf")->name(), "EDF");
}

TEST(SchedulerFactory, UnknownNameThrows) {
  EXPECT_THROW((void)make_scheduler("rate-monotonic"), std::invalid_argument);
  EXPECT_THROW((void)make_scheduler(""), std::invalid_argument);
}

TEST(SchedulerFactory, UnknownNameSuggestsNearMiss) {
  // A one-character typo earns a did-you-mean hint in the error message.
  try {
    (void)make_scheduler("ea-dvf");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("unknown scheduler"), std::string::npos) << what;
    EXPECT_NE(what.find("did you mean 'ea-dvfs'"), std::string::npos) << what;
  }
}

TEST(SchedulerFactory, DistantNameGetsNoSuggestion) {
  try {
    (void)make_scheduler("warp-speed");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_EQ(what.find("did you mean"), std::string::npos) << what;
  }
}

TEST(SchedulerFactory, SuggestionIsCaseInsensitive) {
  // Lookup normalizes case before matching, so the hint does too.
  try {
    (void)make_scheduler("LSO");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("did you mean 'lsa'"), std::string::npos) << what;
  }
}

TEST(SchedulerFactory, EachCallReturnsFreshInstance) {
  const auto a = make_scheduler("lsa");
  const auto b = make_scheduler("lsa");
  EXPECT_NE(a.get(), b.get());
}

}  // namespace
}  // namespace eadvfs::sched
