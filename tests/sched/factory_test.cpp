#include "sched/factory.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace eadvfs::sched {
namespace {

TEST(SchedulerFactory, BuildsEveryCanonicalName) {
  for (const std::string& name : scheduler_names()) {
    const auto scheduler = make_scheduler(name);
    ASSERT_NE(scheduler, nullptr) << name;
    EXPECT_FALSE(scheduler->name().empty());
  }
}

TEST(SchedulerFactory, CanonicalNamesMapToExpectedAlgorithms) {
  EXPECT_EQ(make_scheduler("edf")->name(), "EDF");
  EXPECT_EQ(make_scheduler("lsa")->name(), "LSA");
  EXPECT_EQ(make_scheduler("ea-dvfs")->name(), "EA-DVFS");
  EXPECT_EQ(make_scheduler("greedy-dvfs")->name(), "Greedy-DVFS");
}

TEST(SchedulerFactory, AcceptsAliases) {
  EXPECT_EQ(make_scheduler("eadvfs")->name(), "EA-DVFS");
  EXPECT_EQ(make_scheduler("ea_dvfs")->name(), "EA-DVFS");
  EXPECT_EQ(make_scheduler("greedy")->name(), "Greedy-DVFS");
  EXPECT_EQ(make_scheduler("greedy_dvfs")->name(), "Greedy-DVFS");
}

TEST(SchedulerFactory, IsCaseInsensitive) {
  EXPECT_EQ(make_scheduler("LSA")->name(), "LSA");
  EXPECT_EQ(make_scheduler("EA-DVFS")->name(), "EA-DVFS");
  EXPECT_EQ(make_scheduler("Edf")->name(), "EDF");
}

TEST(SchedulerFactory, UnknownNameThrows) {
  EXPECT_THROW((void)make_scheduler("rate-monotonic"), std::invalid_argument);
  EXPECT_THROW((void)make_scheduler(""), std::invalid_argument);
}

TEST(SchedulerFactory, EachCallReturnsFreshInstance) {
  const auto a = make_scheduler("lsa");
  const auto b = make_scheduler("lsa");
  EXPECT_NE(a.get(), b.get());
}

}  // namespace
}  // namespace eadvfs::sched
