#include "analysis/feasibility.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "../support/scenario.hpp"
#include "sched/factory.hpp"
#include "task/generator.hpp"
#include "util/rng.hpp"

namespace eadvfs::analysis {
namespace {

using test::job;

const proc::FrequencyTable& xscale() {
  static const proc::FrequencyTable table = proc::FrequencyTable::xscale();
  return table;
}

// ---------------------------------------------------------------- hull ----

TEST(MinEnergyForWork, ZeroWorkIsFree) {
  EXPECT_DOUBLE_EQ(min_energy_for_work(xscale(), 0.0, 10.0).value(), 0.0);
}

TEST(MinEnergyForWork, InfeasibleWindowReturnsNullopt) {
  EXPECT_FALSE(min_energy_for_work(xscale(), 11.0, 10.0).has_value());
  EXPECT_FALSE(min_energy_for_work(xscale(), 1.0, 0.0).has_value());
}

TEST(MinEnergyForWork, SlowRegionDutyCyclesTheSlowestPoint) {
  // Average speed 0.075 = half of the slowest point 0.15: idle half the
  // time, run at 0.15 half the time -> 0.5 * 0.08 W * window.
  const auto energy = min_energy_for_work(xscale(), 0.75, 10.0);
  ASSERT_TRUE(energy.has_value());
  EXPECT_NEAR(*energy, 0.5 * 0.08 * 10.0, 1e-9);
}

TEST(MinEnergyForWork, ExactOperatingPointMatchesDirectCost) {
  // Average speed exactly 0.4 -> run the whole window at the 0.4 point.
  const auto energy = min_energy_for_work(xscale(), 4.0, 10.0);
  ASSERT_TRUE(energy.has_value());
  EXPECT_NEAR(*energy, 0.4 * 10.0, 1e-9);
}

TEST(MinEnergyForWork, MixesAdjacentPoints) {
  // Average speed 0.5 between points 0.4 (0.4 W) and 0.6 (1.0 W): equal
  // time share -> 0.7 W average.
  const auto energy = min_energy_for_work(xscale(), 5.0, 10.0);
  ASSERT_TRUE(energy.has_value());
  EXPECT_NEAR(*energy, 0.7 * 10.0, 1e-9);
}

TEST(MinEnergyForWork, FullSpeedWindow) {
  const auto energy = min_energy_for_work(xscale(), 10.0, 10.0);
  ASSERT_TRUE(energy.has_value());
  EXPECT_NEAR(*energy, 3.2 * 10.0, 1e-9);
}

TEST(MinEnergyForWork, LowerBoundsEveryActualRun) {
  // Simulate EA-DVFS on a single job and confirm its measured consumption
  // is never below the analytic bound for that job's window.
  test::Scenario s;
  s.jobs = {job(0, 0.0, 20.0, 3.0)};
  s.source = std::make_shared<energy::ConstantSource>(0.5);
  s.capacity = 100.0;
  s.initial = 4.0;
  s.config.horizon = 20.0;
  const auto scheduler = sched::make_scheduler("ea-dvfs");
  const auto out = test::run_scenario(std::move(s), *scheduler);
  ASSERT_EQ(out.result.jobs_completed, 1u);
  const auto bound = min_energy_for_work(xscale(), 3.0, 20.0);
  ASSERT_TRUE(bound.has_value());
  EXPECT_GE(out.result.consumed, *bound - 1e-9);
}

TEST(MinEnergyForWork, NegativeWorkThrows) {
  EXPECT_THROW((void)min_energy_for_work(xscale(), -1.0, 10.0),
               std::invalid_argument);
}

// ------------------------------------------------------------ witnesses ----

TEST(FindInfeasibility, CleanWorkloadHasNoWitness) {
  const std::vector<task::Job> jobs = {job(0, 0.0, 10.0, 2.0),
                                       job(1, 5.0, 10.0, 2.0)};
  energy::ConstantSource source(2.0);
  EXPECT_FALSE(find_infeasibility(jobs, source, 100.0, xscale()).has_value());
}

TEST(FindInfeasibility, DetectsTimeOverload) {
  // 6 work due within a 5-unit window: impossible at any energy.
  const std::vector<task::Job> jobs = {job(0, 0.0, 5.0, 3.5),
                                       job(1, 1.0, 4.0, 2.5)};
  energy::ConstantSource source(100.0);
  const auto witness = find_infeasibility(jobs, source, 1e6, xscale());
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(witness->kind, InfeasibilityWitness::Kind::kTime);
  EXPECT_NEAR(witness->work, 6.0, 1e-9);
}

TEST(FindInfeasibility, DetectsEnergyStarvation) {
  // 4 work due in [0, 16]; dark source; storage 1.0.  Average speed 0.25
  // sits between the 0.15 and 0.4 points: hull cost 0.208 W * 16 = 3.33 > 1.
  const std::vector<task::Job> jobs = {job(0, 0.0, 16.0, 4.0)};
  energy::ConstantSource dark(0.0);
  const auto witness = find_infeasibility(jobs, dark, 1.0, xscale());
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(witness->kind, InfeasibilityWitness::Kind::kEnergy);
  EXPECT_GT(witness->energy_needed, witness->energy_available);
}

TEST(FindInfeasibility, HarvestRescuesTheWindow) {
  // Same job, but a 0.2 W source delivers 3.2 over the window: 1 + 3.2 > 3.33.
  const std::vector<task::Job> jobs = {job(0, 0.0, 16.0, 4.0)};
  energy::ConstantSource source(0.2);
  EXPECT_FALSE(find_infeasibility(jobs, source, 1.0, xscale()).has_value());
}

TEST(FindInfeasibility, WindowSelectionIgnoresStraddlingJobs) {
  // A job arriving before t1 does not belong to the [t1, t2] window even if
  // its deadline is inside.
  const std::vector<task::Job> jobs = {
      job(0, 0.0, 6.0, 4.0),   // straddles the [5, 11] window
      job(1, 5.0, 6.0, 5.9),   // tight but alone: feasible in time
  };
  energy::ConstantSource source(100.0);
  EXPECT_FALSE(find_infeasibility(jobs, source, 1e6, xscale()).has_value());
}

TEST(FindInfeasibility, EmptyJobListIsFeasible) {
  energy::ConstantSource source(1.0);
  EXPECT_FALSE(
      find_infeasibility(std::vector<task::Job>{}, source, 10.0, xscale())
          .has_value());
}

TEST(FindInfeasibility, BadCapacityThrows) {
  energy::ConstantSource source(1.0);
  EXPECT_THROW((void)find_infeasibility(std::vector<task::Job>{}, source, 0.0,
                                        xscale()),
               std::invalid_argument);
}

TEST(FindInfeasibility, WitnessDescriptionIsReadable) {
  const std::vector<task::Job> jobs = {job(0, 0.0, 5.0, 6.0)};
  // 6 work in 5-unit window: wcet > deadline is rejected by TaskSet but an
  // explicit job list can express it; the analyzer must flag it.
  energy::ConstantSource source(100.0);
  const auto witness = find_infeasibility(jobs, source, 1e6, xscale());
  ASSERT_TRUE(witness.has_value());
  EXPECT_NE(witness->describe().find("window"), std::string::npos);
}

/// The soundness property: whenever the analyzer produces a witness, every
/// scheduler really does miss at least one deadline in simulation.
TEST(FindInfeasibility, WitnessImpliesSimulatedMissesForEverySchedulerSweep) {
  std::size_t witnesses_checked = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    task::GeneratorConfig gen_cfg;
    gen_cfg.target_utilization = 0.7;
    task::TaskSetGenerator gen(gen_cfg);
    util::Xoshiro256ss rng(seed);
    const task::TaskSet set = gen.generate(rng);
    const auto source = std::make_shared<energy::ConstantSource>(0.4);
    const double capacity = 5.0;  // starved setup to provoke witnesses
    const Time horizon = 400.0;

    const auto witness =
        find_infeasibility(set, horizon, *source, capacity, xscale());
    if (!witness) continue;
    ++witnesses_checked;

    for (const char* name : {"edf", "lsa", "ea-dvfs", "greedy-dvfs"}) {
      test::Scenario s;
      s.task_set = set;
      s.source = source;
      s.capacity = capacity;
      s.config.horizon = horizon;
      const auto scheduler = sched::make_scheduler(name);
      const auto out = test::run_scenario(std::move(s), *scheduler);
      EXPECT_GT(out.result.jobs_missed, 0u)
          << name << " seed " << seed << ": " << witness->describe();
    }
  }
  EXPECT_GT(witnesses_checked, 0u) << "setup never produced a witness";
}

// ------------------------------------------------------------- long run ----

TEST(LongRunShortfall, BalancedWorkloadHasNoShortfall) {
  task::Task t;
  t.id = 0;
  t.period = 10.0;
  t.relative_deadline = 10.0;
  t.wcet = 2.0;  // U = 0.2; cheapest cost 0.107 W average
  const task::TaskSet set({t});
  energy::ConstantSource source(1.0);
  EXPECT_DOUBLE_EQ(
      long_run_energy_shortfall(set, 1000.0, source, 100.0, xscale()), 0.0);
}

TEST(LongRunShortfall, StarvedWorkloadReportsDeficit) {
  task::Task t;
  t.id = 0;
  t.period = 10.0;
  t.relative_deadline = 10.0;
  t.wcet = 8.0;  // U = 0.8 -> at least ~2.2 W average demand on xscale hull
  const task::TaskSet set({t});
  energy::ConstantSource source(0.1);
  const Energy shortfall =
      long_run_energy_shortfall(set, 1000.0, source, 50.0, xscale());
  EXPECT_GT(shortfall, 0.0);
}

TEST(LongRunShortfall, BadHorizonThrows) {
  const task::TaskSet set;
  energy::ConstantSource source(1.0);
  EXPECT_THROW(
      (void)long_run_energy_shortfall(set, 0.0, source, 10.0, xscale()),
      std::invalid_argument);
}

}  // namespace
}  // namespace eadvfs::analysis
