#include "analysis/feasibility.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "../support/scenario.hpp"
#include "energy/solar_source.hpp"
#include "exp/capacity_search.hpp"
#include "task/generator.hpp"
#include "util/rng.hpp"

namespace eadvfs::analysis {
namespace {

using test::job;

const proc::FrequencyTable& xscale() {
  static const proc::FrequencyTable table = proc::FrequencyTable::xscale();
  return table;
}

TEST(MinCapacityLowerBound, EmptyWorkloadNeedsNothing) {
  energy::ConstantSource source(1.0);
  const auto bound =
      min_capacity_lower_bound(std::vector<task::Job>{}, source, xscale());
  ASSERT_TRUE(bound.has_value());
  EXPECT_DOUBLE_EQ(*bound, 0.0);
}

TEST(MinCapacityLowerBound, RichHarvestNeedsNoStorage) {
  // One 1-work job in a 10-unit window with 5 W harvest: the window alone
  // delivers 50 >> the cheapest cost.
  const std::vector<task::Job> jobs = {job(0, 0.0, 10.0, 1.0)};
  energy::ConstantSource source(5.0);
  const auto bound = min_capacity_lower_bound(jobs, source, xscale());
  ASSERT_TRUE(bound.has_value());
  EXPECT_DOUBLE_EQ(*bound, 0.0);
}

TEST(MinCapacityLowerBound, DarkWorldNeedsTheFullHullCost) {
  // 4 work in a 16-unit dark window: average speed 0.25, hull power 0.208,
  // energy 3.328 — all of it must be banked.
  const std::vector<task::Job> jobs = {job(0, 0.0, 16.0, 4.0)};
  energy::ConstantSource dark(0.0);
  const auto bound = min_capacity_lower_bound(jobs, dark, xscale());
  ASSERT_TRUE(bound.has_value());
  EXPECT_NEAR(*bound, 0.208 * 16.0, 1e-9);
}

TEST(MinCapacityLowerBound, TimeInfeasibleReturnsNullopt) {
  const std::vector<task::Job> jobs = {job(0, 0.0, 1.0, 2.0)};
  energy::ConstantSource source(100.0);
  EXPECT_FALSE(min_capacity_lower_bound(jobs, source, xscale()).has_value());
}

TEST(MinCapacityLowerBound, ConsistentWithWitnessChecker) {
  // For capacities strictly below the bound the witness checker must fire;
  // at/above the bound the *lower-bound* windows are satisfied (no claim
  // about schedulability, only about the checker's own inequality).
  const std::vector<task::Job> jobs = {job(0, 0.0, 16.0, 4.0),
                                       job(1, 5.0, 16.0, 1.5)};
  energy::ConstantSource source(0.1);
  const auto bound = min_capacity_lower_bound(jobs, source, xscale());
  ASSERT_TRUE(bound.has_value());
  ASSERT_GT(*bound, 0.0);
  EXPECT_TRUE(
      find_infeasibility(jobs, source, *bound * 0.99, xscale()).has_value());
  EXPECT_FALSE(
      find_infeasibility(jobs, source, *bound * 1.01, xscale()).has_value());
}

TEST(MinCapacityLowerBound, LowerBoundsSimulatedCmin) {
  // The Table-1 machinery's measured C_min (for real schedulers, with a
  // non-oracle predictor) must never dip below the analytic bound.
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    task::GeneratorConfig gen_cfg;
    gen_cfg.target_utilization = 0.4;
    task::TaskSetGenerator gen(gen_cfg);
    util::Xoshiro256ss rng(seed);
    const task::TaskSet set = gen.generate(rng);
    energy::SolarSourceConfig solar;
    solar.seed = seed ^ 0xB0;
    solar.horizon = 800.0;
    const auto source = std::make_shared<const energy::SolarSource>(solar);

    const auto bound =
        min_capacity_lower_bound(set, 800.0, *source, xscale());
    ASSERT_TRUE(bound.has_value()) << seed;

    exp::CapacitySearchConfig cfg;
    cfg.sim.horizon = 800.0;
    cfg.solar.horizon = 800.0;
    for (const char* scheduler : {"lsa", "ea-dvfs"}) {
      const double cmin = exp::find_min_capacity(cfg, scheduler, set, source);
      ASSERT_GT(cmin, 0.0) << scheduler;
      // 1% binary-search tolerance on cmin; allow it on the comparison too.
      EXPECT_GE(cmin * 1.02, *bound) << scheduler << " seed " << seed;
    }
  }
}

TEST(MinCapacityLowerBound, TaskSetOverloadMatchesExpandedJobs) {
  task::Task t;
  t.id = 0;
  t.period = 20.0;
  t.relative_deadline = 20.0;
  t.wcet = 4.0;
  const task::TaskSet set({t});
  energy::ConstantSource source(0.05);
  const auto from_set = min_capacity_lower_bound(set, 100.0, source, xscale());
  std::vector<task::Job> jobs;
  for (int k = 0; k < 5; ++k) jobs.push_back(job(static_cast<task::JobId>(k),
                                                 20.0 * k, 20.0, 4.0));
  const auto from_jobs = min_capacity_lower_bound(jobs, source, xscale());
  ASSERT_TRUE(from_set.has_value());
  ASSERT_TRUE(from_jobs.has_value());
  EXPECT_NEAR(*from_set, *from_jobs, 1e-9);
}

}  // namespace
}  // namespace eadvfs::analysis
