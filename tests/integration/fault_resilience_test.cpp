/// Fault-resilience property suite: every scheduler in the zoo, under both
/// miss policies, both depletion policies and each fault-profile preset,
/// must run to the horizon with the invariant auditor attached (the engine
/// throws AuditError on any violation when config.audit is set), conserve
/// energy, and be exactly reproducible.  A hand-computed blackout scenario
/// pins the suspend-and-resume and abort-and-charge accounting against both
/// the exact engine and the naive fixed-step reference integrator.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "energy/solar_source.hpp"
#include "energy/source.hpp"
#include "exp/setup.hpp"
#include "sched/factory.hpp"
#include "sim/fault/faulted_source.hpp"
#include "sim/fault/profile.hpp"
#include "task/generator.hpp"
#include "util/rng.hpp"
#include "../support/reference_sim.hpp"
#include "../support/scenario.hpp"

namespace eadvfs {
namespace {

using sim::fault::FaultProfile;
using sim::fault::FaultedSource;
using test::job;
using test::ReferenceResult;
using test::run_reference;
using test::run_scenario;
using test::Scenario;

// ------------------------------------------------------- property sweep

struct SweepCase {
  std::string scheduler;
  std::string profile;
  sim::MissPolicy miss_policy;
  sim::DepletionPolicy depletion;
};

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  for (const std::string& scheduler : sched::scheduler_names()) {
    for (const char* profile :
         {"blackout:seed=11", "storage:seed=12", "switch:seed=13",
          "mixed:seed=14"}) {
      for (const sim::MissPolicy miss :
           {sim::MissPolicy::kDropAtDeadline, sim::MissPolicy::kContinueLate}) {
        // Pair each miss policy with a different depletion policy to halve
        // the grid without losing coverage of either axis.
        const sim::DepletionPolicy depletion =
            miss == sim::MissPolicy::kDropAtDeadline
                ? sim::DepletionPolicy::kSuspendAndResume
                : sim::DepletionPolicy::kAbortAndCharge;
        cases.push_back({scheduler, profile, miss, depletion});
      }
    }
  }
  return cases;
}

sim::SimulationResult run_sweep_case(const SweepCase& c) {
  sim::SimulationConfig cfg;
  cfg.horizon = 2000.0;
  cfg.miss_policy = c.miss_policy;
  cfg.depletion_policy = c.depletion;
  cfg.audit = true;  // engine throws AuditError on any invariant violation

  util::Xoshiro256ss rng(1234);
  task::GeneratorConfig gen_cfg;
  gen_cfg.target_utilization = 0.6;
  gen_cfg.n_tasks = 4;
  const task::TaskSet task_set = task::TaskSetGenerator(gen_cfg).generate(rng);

  energy::SolarSourceConfig solar;
  solar.seed = 77;
  solar.horizon = cfg.horizon;
  const auto source = std::make_shared<const energy::SolarSource>(solar);

  const FaultProfile fault = FaultProfile::parse(c.profile);
  const auto scheduler = sched::make_scheduler(c.scheduler);
  return exp::run_once(cfg, source, /*capacity=*/75.0,
                       proc::FrequencyTable::xscale(), *scheduler,
                       "slotted-ewma", task_set, {}, {}, {}, &fault);
}

class FaultResilienceSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FaultResilienceSweep, AuditedRunConservesEnergyAndIsReproducible) {
  const SweepCase c = sweep_cases()[GetParam()];
  SCOPED_TRACE(c.scheduler + " / " + c.profile);

  // run_once throws sim::AuditError if any invariant breaks mid-run.
  const sim::SimulationResult a = run_sweep_case(c);
  EXPECT_GT(a.jobs_released, 0u);
  EXPECT_NEAR(a.conservation_error(), 0.0, 1e-6);
  // On-time completions and misses are disjoint.  Aborts are NOT disjoint
  // from misses under kContinueLate: a job can miss its deadline, keep
  // running late, and then be abandoned when the storage empties.
  EXPECT_LE(a.jobs_completed + a.jobs_missed, a.jobs_released);
  EXPECT_LE(a.jobs_aborted, a.jobs_released);

  // Exact reproducibility: an identical configuration replays bit-for-bit.
  const sim::SimulationResult b = run_sweep_case(c);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.jobs_missed, b.jobs_missed);
  EXPECT_EQ(a.jobs_aborted, b.jobs_aborted);
  EXPECT_EQ(a.suspensions, b.suspensions);
  EXPECT_EQ(a.storage_faults_injected, b.storage_faults_injected);
  EXPECT_EQ(a.switch_faults_injected, b.switch_faults_injected);
  EXPECT_EQ(a.harvested, b.harvested);  // exact, not NEAR: determinism
  EXPECT_EQ(a.consumed, b.consumed);
  EXPECT_EQ(a.fault_drained, b.fault_drained);
  EXPECT_EQ(a.storage_final, b.storage_final);
}

INSTANTIATE_TEST_SUITE_P(AllSchedulersTimesProfiles, FaultResilienceSweep,
                         ::testing::Range<std::size_t>(0,
                                                       sweep_cases().size()));

// ------------------------------------------- hand-computed blackout pin

/// One job (30 work units, deadline 100) on the XScale table under EDF
/// (always full speed: S=1, P=3.2 W), constant 4 W harvest with a blackout
/// on [10, 20), storage 50 J starting at 20 J, horizon 50, zero overheads.
///
/// Timeline (suspend-and-resume):
///   [0, 10):      net +0.8 W -> level 20 + 8 = 28 J, work 10
///   [10, 18.75):  blackout, net -3.2 W -> level hits 0, work 8.75
///   t = 18.75:    storage dry mid-segment -> ONE suspension
///   [18.75, 20):  stalled (no harvest, no storage) -> stall 1.25
///   [20, 31.25):  4 W covers 3.2 W draw directly; remaining 11.25 work
///                 completes at t = 31.25, level 0.8 * 11.25 = 9 J
///   [31.25, 41.5): idle, charge at 4 W to full (50 J)
///   [41.5, 50):   overflow 4 W * 8.5 = 34 J
/// Totals: harvested 4 * 40 = 160, consumed 3.2 * 30 = 96, busy 30,
/// stall 1.25, final 50, conservation 20 + 160 - 96 - 34 - 50 = 0.
Scenario blackout_pin_scenario() {
  Scenario s;
  s.jobs = {job(1, 0.0, 100.0, 30.0)};
  s.source = std::make_shared<FaultedSource>(
      std::make_shared<energy::ConstantSource>(4.0),
      std::vector<sim::fault::HarvestWindow>{{10.0, 20.0, 0.0}});
  s.capacity = 50.0;
  s.initial = 20.0;
  s.config.horizon = 50.0;
  return s;
}

TEST(BlackoutPin, SuspendAndResumeAccountingMatchesHandComputation) {
  Scenario s = blackout_pin_scenario();
  s.config.depletion_policy = sim::DepletionPolicy::kSuspendAndResume;
  const auto scheduler = sched::make_scheduler("edf");
  const auto outcome = run_scenario(std::move(s), *scheduler);

  EXPECT_EQ(outcome.result.jobs_completed, 1u);
  EXPECT_EQ(outcome.result.jobs_missed, 0u);
  EXPECT_EQ(outcome.result.jobs_aborted, 0u);
  EXPECT_EQ(outcome.result.suspensions, 1u);
  EXPECT_NEAR(outcome.result.harvested, 160.0, 1e-9);
  EXPECT_NEAR(outcome.result.consumed, 96.0, 1e-9);
  EXPECT_NEAR(outcome.result.overflow, 34.0, 1e-9);
  EXPECT_NEAR(outcome.result.storage_final, 50.0, 1e-9);
  EXPECT_NEAR(outcome.result.busy_time, 30.0, 1e-9);
  EXPECT_NEAR(outcome.result.stall_time, 1.25, 1e-9);
  EXPECT_NEAR(outcome.result.conservation_error(), 0.0, 1e-9);
  EXPECT_EQ(outcome.audit_violations, 0u);
}

TEST(BlackoutPin, AbortAndChargeAccountingMatchesHandComputation) {
  // Same physics until the storage dries at t = 18.75; then the job is
  // abandoned: busy 18.75, consumed 3.2 * 18.75 = 60, work dropped 11.25.
  // Idle charging refills 50 J by t = 32.5; overflow 4 * 17.5 = 70.
  Scenario s = blackout_pin_scenario();
  s.config.depletion_policy = sim::DepletionPolicy::kAbortAndCharge;
  const auto scheduler = sched::make_scheduler("edf");
  const auto outcome = run_scenario(std::move(s), *scheduler);

  EXPECT_EQ(outcome.result.jobs_aborted, 1u);
  EXPECT_EQ(outcome.result.jobs_completed, 0u);
  EXPECT_EQ(outcome.result.jobs_missed, 0u);  // energy killed it, not EDF
  EXPECT_EQ(outcome.result.suspensions, 0u);
  EXPECT_NEAR(outcome.result.busy_time, 18.75, 1e-9);
  EXPECT_NEAR(outcome.result.consumed, 60.0, 1e-9);
  EXPECT_NEAR(outcome.result.harvested, 160.0, 1e-9);
  EXPECT_NEAR(outcome.result.overflow, 70.0, 1e-9);
  EXPECT_NEAR(outcome.result.storage_final, 50.0, 1e-9);
  EXPECT_NEAR(outcome.result.work_dropped, 11.25, 1e-9);
  EXPECT_NEAR(outcome.result.conservation_error(), 0.0, 1e-9);
  EXPECT_EQ(outcome.audit_violations, 0u);
}

TEST(BlackoutPin, FixedStepReferenceAgreesThroughTheBlackout) {
  // The reference integrator consumes the same FaultedSource, so the
  // blackout physics (though not the depletion bookkeeping, which it does
  // not model) must agree with the engine within O(step).
  const Scenario s = blackout_pin_scenario();
  const auto scheduler = sched::make_scheduler("edf");
  const ReferenceResult ref = run_reference(s, *scheduler, 0.005);

  EXPECT_EQ(ref.jobs_released, 1u);
  EXPECT_EQ(ref.jobs_completed, 1u);
  EXPECT_EQ(ref.jobs_missed, 0u);
  EXPECT_NEAR(ref.harvested, 160.0, 0.05);
  EXPECT_NEAR(ref.consumed, 96.0, 0.1);
  EXPECT_NEAR(ref.storage_final, 50.0, 0.1);
  EXPECT_NEAR(ref.work_completed, 30.0, 0.02);
}

}  // namespace
}  // namespace eadvfs
