/// Statistical comparison tests: small-sample versions of the paper's
/// headline claims, kept cheap enough for CI but seeded so they are stable.

#include <gtest/gtest.h>

#include <memory>

#include "../support/scenario.hpp"
#include "energy/slotted_ewma_predictor.hpp"
#include "energy/solar_source.hpp"
#include "exp/capacity_search.hpp"
#include "sched/factory.hpp"
#include "task/generator.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace eadvfs {
namespace {

struct PairStats {
  util::RunningStats lsa_miss;
  util::RunningStats ea_miss;
  util::RunningStats lsa_mean_energy;
  util::RunningStats ea_mean_energy;
};

PairStats run_pairs(double utilization, Energy capacity, std::size_t n_sets) {
  PairStats stats;
  util::SplitMix64 seeder(20080310);  // DATE'08 vintage
  for (std::size_t rep = 0; rep < n_sets; ++rep) {
    const std::uint64_t seed = seeder.next();
    task::GeneratorConfig gen_cfg;
    gen_cfg.target_utilization = utilization;
    task::TaskSetGenerator gen(gen_cfg);
    util::Xoshiro256ss rng(seed);
    const task::TaskSet set = gen.generate(rng);

    energy::SolarSourceConfig solar;
    solar.seed = seed ^ 0x5eed;
    solar.horizon = 3000.0;
    const auto source = std::make_shared<const energy::SolarSource>(solar);

    for (const char* name : {"lsa", "ea-dvfs"}) {
      test::Scenario s;
      s.task_set = set;
      s.source = source;
      s.capacity = capacity;
      s.config.horizon = 3000.0;
      s.predictor = std::make_unique<energy::SlottedEwmaPredictor>(
          energy::SlottedEwmaConfig{});
      const auto scheduler = sched::make_scheduler(name);
      const auto out = test::run_scenario(std::move(s), *scheduler);
      // Time-averaged normalized level (the quantity behind paper Fig. 6;
      // the endpoint value alone is dominated by where in the solar cycle
      // the horizon happens to land).
      util::RunningStats level;
      for (Energy e : out.energy_trace.levels()) level.add(e / capacity);
      if (std::string(name) == "lsa") {
        stats.lsa_miss.add(out.result.miss_rate());
        stats.lsa_mean_energy.add(level.mean());
      } else {
        stats.ea_miss.add(out.result.miss_rate());
        stats.ea_mean_energy.add(level.mean());
      }
    }
  }
  return stats;
}

/// Paper Figure 8 claim: at low utilization EA-DVFS's deadline miss rate is
/// at least ~50% below LSA's for the same (small) capacity.
TEST(Comparison, LowUtilizationEaDvfsHalvesMissRate) {
  const PairStats stats = run_pairs(0.4, 60.0, 12);
  ASSERT_GT(stats.lsa_miss.mean(), 0.0);  // the regime must actually stress
  EXPECT_LT(stats.ea_miss.mean(), 0.55 * stats.lsa_miss.mean());
}

/// Paper Figure 9 claim: at high utilization the two algorithms are close
/// (EA-DVFS "performs as well as LSA does").
TEST(Comparison, HighUtilizationSchedulersAreClose) {
  const PairStats stats = run_pairs(0.8, 60.0, 12);
  // EA-DVFS is never worse, and the relative gap is far smaller than the
  // >2x separation seen at U=0.4.
  EXPECT_LE(stats.ea_miss.mean(), stats.lsa_miss.mean() + 0.02);
  if (stats.lsa_miss.mean() > 0.0) {
    EXPECT_GT(stats.ea_miss.mean(), 0.5 * stats.lsa_miss.mean());
  }
}

/// Paper Figure 6 claim: at low utilization the EA-DVFS system retains
/// more stored energy than the LSA system (time-averaged over the run).
TEST(Comparison, LowUtilizationEaDvfsStoresMoreEnergy) {
  const PairStats stats = run_pairs(0.4, 150.0, 12);
  EXPECT_GT(stats.ea_mean_energy.mean(), stats.lsa_mean_energy.mean());
}

/// EA-DVFS dominates pairwise, not just on average, in the low-U regime:
/// averaged over seeds its miss rate cannot exceed LSA's.
TEST(Comparison, EaDvfsNotWorseOnAverageAcrossCapacities) {
  for (Energy capacity : {40.0, 80.0, 160.0}) {
    const PairStats stats = run_pairs(0.4, capacity, 8);
    EXPECT_LE(stats.ea_miss.mean(), stats.lsa_miss.mean() + 0.01)
        << "capacity " << capacity;
  }
}

/// Paper Table 1 shape: the minimum-storage ratio C_min,LSA / C_min,EA-DVFS
/// decays toward 1 as utilization rises (2.5 → 1.01 in the paper).  A small
/// paired sample suffices to pin the monotone trend's endpoints.
TEST(Comparison, CminRatioDecaysWithUtilization) {
  auto ratio_at = [](double utilization) {
    exp::CapacitySearchConfig cfg;
    cfg.n_task_sets = 6;
    cfg.seed = 1234;
    cfg.sim.horizon = 2000.0;
    cfg.solar.horizon = 2000.0;
    cfg.generator.target_utilization = utilization;
    const auto result = exp::run_capacity_search(cfg);
    EXPECT_GT(result.sets_evaluated, 0u);
    return result.ratio_of_means();
  };
  const double low = ratio_at(0.2);
  const double high = ratio_at(0.8);
  EXPECT_GT(low, 1.5);   // strong advantage at low utilization
  EXPECT_LT(high, 1.5);  // fading advantage at high utilization
  EXPECT_GT(high, 0.95); // but never below parity
  EXPECT_GT(low, high);  // the decay itself
}

/// Greedy stretching (no s2 switch, no procrastination) must be strictly
/// worse than EA-DVFS at moderate utilization — it is the strawman the
/// paper's §4.3 rule exists to beat.
TEST(Comparison, EaDvfsBeatsGreedyStretching) {
  util::RunningStats greedy_miss, ea_miss;
  util::SplitMix64 seeder(77);
  for (int rep = 0; rep < 10; ++rep) {
    const std::uint64_t seed = seeder.next();
    task::GeneratorConfig gen_cfg;
    gen_cfg.target_utilization = 0.6;
    task::TaskSetGenerator gen(gen_cfg);
    util::Xoshiro256ss rng(seed);
    const task::TaskSet set = gen.generate(rng);
    energy::SolarSourceConfig solar;
    solar.seed = seed ^ 0x77;
    solar.horizon = 2000.0;
    const auto source = std::make_shared<const energy::SolarSource>(solar);
    for (const char* name : {"greedy-dvfs", "ea-dvfs"}) {
      test::Scenario s;
      s.task_set = set;
      s.source = source;
      s.capacity = 80.0;
      s.config.horizon = 2000.0;
      const auto scheduler = sched::make_scheduler(name);
      const auto out = test::run_scenario(std::move(s), *scheduler);
      (std::string(name) == "ea-dvfs" ? ea_miss : greedy_miss)
          .add(out.result.miss_rate());
    }
  }
  EXPECT_LE(ea_miss.mean(), greedy_miss.mean() + 1e-9);
}

}  // namespace
}  // namespace eadvfs
