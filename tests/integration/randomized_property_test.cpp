/// Parameterized property sweeps: invariants that must hold for every
/// scheduler, under both deadline-miss policies, on randomized workloads
/// driven by the stochastic solar source.
///
/// Each (scheduler, miss policy, utilization, seed) combination — all six
/// schedulers x both policies x 3 utilizations x 3 seeds = 108 scenarios —
/// runs a full simulation with the sim::AuditObserver attached (run_scenario
/// attaches it by default), so every run is additionally checked for segment
/// coverage, energy conservation, scheduling legality and stream/result
/// consistency on top of the explicit assertions below.
///
/// Runs are memoized per parameter: the artifacts are immutable once
/// produced, and re-simulating for each of the ~10 property tests would
/// dominate suite runtime.  DeterministicReplay deliberately bypasses the
/// cache — its whole point is to simulate twice.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <tuple>

#include "../support/scenario.hpp"
#include "energy/slotted_ewma_predictor.hpp"
#include "energy/solar_source.hpp"
#include "sched/factory.hpp"
#include "task/generator.hpp"
#include "util/rng.hpp"

namespace eadvfs {
namespace {

using Param = std::tuple<std::string /*scheduler*/, sim::MissPolicy,
                         double /*utilization*/, std::uint64_t /*seed*/>;

class SchedulerInvariantTest : public ::testing::TestWithParam<Param> {};

struct RunArtifacts {
  sim::SimulationResult result;
  sim::ScheduleRecorder schedule;
  sim::EnergyTraceRecorder trace{1.0, 0.0};
  Energy capacity = 0.0;
  std::map<task::JobId, task::Job> released;
  std::size_t audit_violations = 0;
  std::string audit_report;
  proc::FrequencyTable table = proc::FrequencyTable::xscale();
};

RunArtifacts run_param(const Param& param) {
  const auto& [sched_name, miss_policy, utilization, seed] = param;

  task::GeneratorConfig gen_cfg;
  gen_cfg.target_utilization = utilization;
  task::TaskSetGenerator gen(gen_cfg);
  util::Xoshiro256ss rng(seed);

  test::Scenario s;
  s.task_set = gen.generate(rng);
  energy::SolarSourceConfig solar;
  solar.seed = seed ^ 0xabcdef;
  solar.horizon = 1000.0;
  s.source = std::make_shared<energy::SolarSource>(solar);
  s.capacity = 60.0 + static_cast<double>(seed % 5) * 40.0;
  s.config.horizon = 1000.0;
  s.config.miss_policy = miss_policy;
  energy::SlottedEwmaConfig pred_cfg;
  s.predictor = std::make_unique<energy::SlottedEwmaPredictor>(pred_cfg);

  RunArtifacts artifacts;
  artifacts.capacity = s.capacity;
  const auto scheduler = sched::make_scheduler(sched_name);
  auto out = test::run_scenario(std::move(s), *scheduler);
  artifacts.result = out.result;
  artifacts.schedule = out.schedule;
  artifacts.trace = out.energy_trace;
  artifacts.audit_violations = out.audit_violations;
  artifacts.audit_report = out.audit_report;
  for (const auto& job : artifacts.schedule.releases())
    artifacts.released[job.id] = job;
  return artifacts;
}

const RunArtifacts& cached_run(const Param& param) {
  static std::map<Param, RunArtifacts> cache;
  const auto it = cache.find(param);
  if (it != cache.end()) return it->second;
  return cache.emplace(param, run_param(param)).first->second;
}

TEST_P(SchedulerInvariantTest, AuditorReportsNoViolations) {
  const auto& a = cached_run(GetParam());
  EXPECT_EQ(a.audit_violations, 0u) << a.audit_report;
}

TEST_P(SchedulerInvariantTest, EnergyIsConserved) {
  const auto& a = cached_run(GetParam());
  EXPECT_LT(a.result.conservation_error(), 1e-5);
}

TEST_P(SchedulerInvariantTest, StorageStaysWithinBounds) {
  const auto& a = cached_run(GetParam());
  for (Energy level : a.trace.levels()) {
    EXPECT_GE(level, -1e-6);
    EXPECT_LE(level, a.capacity + 1e-6);
  }
}

TEST_P(SchedulerInvariantTest, TimeAccountingSumsToHorizon) {
  const auto& a = cached_run(GetParam());
  EXPECT_NEAR(a.result.busy_time + a.result.idle_time + a.result.stall_time,
              1000.0, 1e-6);
}

TEST_P(SchedulerInvariantTest, JobsExecuteOnlyInsideTheirWindows) {
  const auto& a = cached_run(GetParam());
  const bool drop =
      std::get<1>(GetParam()) == sim::MissPolicy::kDropAtDeadline;
  for (const auto& slice : a.schedule.slices()) {
    const auto it = a.released.find(slice.job);
    ASSERT_NE(it, a.released.end());
    EXPECT_GE(slice.start, it->second.arrival - 1e-6);
    // Only the drop policy forbids work past the deadline; kContinueLate
    // exists precisely to let late jobs keep running.
    if (drop) EXPECT_LE(slice.end, it->second.absolute_deadline + 1e-6);
  }
}

TEST_P(SchedulerInvariantTest, SlicesDoNotOverlap) {
  const auto& a = cached_run(GetParam());
  for (std::size_t i = 1; i < a.schedule.slices().size(); ++i) {
    EXPECT_GE(a.schedule.slices()[i].start,
              a.schedule.slices()[i - 1].end - 1e-9);
  }
}

TEST_P(SchedulerInvariantTest, CompletedJobsReceivedExactlyTheirWork) {
  const auto& a = cached_run(GetParam());
  for (const auto& outcome : a.schedule.outcomes()) {
    if (outcome.missed) continue;
    Work done = 0.0;
    for (const auto& slice : a.schedule.slices_of(outcome.job.id))
      done += (slice.end - slice.start) * a.table.at(slice.op_index).speed;
    EXPECT_NEAR(done, outcome.job.wcet, 1e-6) << "job " << outcome.job.id;
  }
}

TEST_P(SchedulerInvariantTest, EveryJobIsAccountedForExactlyOnce) {
  const auto& a = cached_run(GetParam());
  EXPECT_EQ(a.result.jobs_released,
            a.result.jobs_completed + a.result.jobs_missed +
                a.result.jobs_unresolved);
}

TEST_P(SchedulerInvariantTest, ConsumedEnergyMatchesOpResidency) {
  const auto& a = cached_run(GetParam());
  Energy expected = 0.0;
  for (std::size_t op = 0; op < a.result.time_at_op.size(); ++op)
    expected += a.result.time_at_op[op] * a.table.at(op).power;
  EXPECT_NEAR(a.result.consumed, expected, 1e-5);
}

TEST_P(SchedulerInvariantTest, MissRateWithinUnitInterval) {
  const auto& a = cached_run(GetParam());
  EXPECT_GE(a.result.miss_rate(), 0.0);
  EXPECT_LE(a.result.miss_rate(), 1.0);
}

TEST_P(SchedulerInvariantTest, DeterministicReplay) {
  const auto a = run_param(GetParam());
  const auto b = run_param(GetParam());
  EXPECT_EQ(a.result.jobs_completed, b.result.jobs_completed);
  EXPECT_EQ(a.result.jobs_missed, b.result.jobs_missed);
  EXPECT_DOUBLE_EQ(a.result.consumed, b.result.consumed);
  EXPECT_DOUBLE_EQ(a.result.storage_final, b.result.storage_final);
  EXPECT_EQ(a.result.segments, b.result.segments);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, SchedulerInvariantTest,
    ::testing::Combine(::testing::Values("edf", "rm", "lsa", "ea-dvfs",
                                         "ea-dvfs-static", "greedy-dvfs"),
                       ::testing::Values(sim::MissPolicy::kDropAtDeadline,
                                         sim::MissPolicy::kContinueLate),
                       ::testing::Values(0.2, 0.5, 0.8),
                       ::testing::Values(1ull, 2ull, 3ull)),
    [](const ::testing::TestParamInfo<Param>& info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name)
        if (c == '-') c = '_';
      const bool drop =
          std::get<1>(info.param) == sim::MissPolicy::kDropAtDeadline;
      return name + (drop ? "_drop" : "_late") + "_u" +
             std::to_string(static_cast<int>(std::get<2>(info.param) * 10)) +
             "_s" + std::to_string(std::get<3>(info.param));
    });

}  // namespace
}  // namespace eadvfs
