/// End-to-end reproduction of the paper's two worked examples:
///   §2 / Figure 1 — LSA runs τ1 at full power, drains the storage, and τ2
///   misses; a two-speed DVFS schedule meets both deadlines.
///   §4.3 / Figure 3 — greedily stretching τ1 starves τ2 even with ample
///   energy; EA-DVFS's switch-to-full-speed-at-s2 rule saves it.

#include <gtest/gtest.h>

#include <memory>

#include "../support/scenario.hpp"
#include "sched/ea_dvfs_scheduler.hpp"
#include "sched/greedy_dvfs_scheduler.hpp"
#include "sched/lsa_scheduler.hpp"

namespace eadvfs {
namespace {

using test::job;
using test::run_scenario;
using test::Scenario;

/// Paper §2 setup: τ1 = (0, 16, 4), τ2 = (5, 16, 1.5) (absolute deadline
/// 21), E_C(0) = 24, P_S = 0.5, P_max = 8, two speeds (half speed at one
/// third the power).
test::Scenario section2_scenario() {
  Scenario s;
  s.jobs = {job(0, 0.0, 16.0, 4.0), job(1, 5.0, 16.0, 1.5)};
  s.source = std::make_shared<energy::ConstantSource>(0.5);
  s.capacity = 1000.0;
  s.initial = 24.0;
  s.table = proc::FrequencyTable::two_speed(8.0);
  s.config.horizon = 30.0;
  return s;
}

TEST(PaperSection2, LsaMissesTauTwo) {
  sched::LsaScheduler lsa;
  const auto out = run_scenario(section2_scenario(), lsa);
  // τ1 completes exactly at its deadline...
  ASSERT_GE(out.schedule.outcomes().size(), 1u);
  EXPECT_FALSE(out.schedule.outcomes()[0].missed);
  EXPECT_NEAR(out.schedule.outcomes()[0].time, 16.0, 1e-6);
  // ...but the storage is empty and τ2 cannot gather 12 units by t=21.
  EXPECT_EQ(out.result.jobs_missed, 1u);
  EXPECT_EQ(out.result.jobs_completed, 1u);
}

TEST(PaperSection2, LsaStartsTauOneAtTwelveAndDrainsStorage) {
  sched::LsaScheduler lsa;
  const auto out = run_scenario(section2_scenario(), lsa);
  const auto slices = out.schedule.slices_of(0);
  ASSERT_FALSE(slices.empty());
  EXPECT_NEAR(slices.front().start, 12.0, 1e-6);  // paper: "starts at 12"
  // Storage exactly zero at 16 (paper: "depletes all energy exactly at 16").
  EXPECT_NEAR(out.energy_trace.levels()[16], 0.0, 1e-6);
}

TEST(PaperSection2, EaDvfsMeetsBothDeadlines) {
  sched::EaDvfsScheduler ea;
  const auto out = run_scenario(section2_scenario(), ea);
  EXPECT_EQ(out.result.jobs_missed, 0u);
  EXPECT_EQ(out.result.jobs_completed, 2u);
  // τ1 must have spent time at the reduced speed (that is the whole point).
  bool used_low_speed = false;
  for (const auto& slice : out.schedule.slices_of(0))
    if (slice.op_index == 0) used_low_speed = true;
  EXPECT_TRUE(used_low_speed);
}

TEST(PaperSection2, EaDvfsLeavesEnoughEnergyForTauTwo) {
  // The paper's arithmetic: running τ1 slow leaves ≈13.16 available by 21.
  // Our EA-DVFS idles [0, s1) first, so the exact trajectory differs, but
  // the invariant that matters is: when τ2 starts it can finish by 21.
  sched::EaDvfsScheduler ea;
  const auto out = run_scenario(section2_scenario(), ea);
  for (const auto& outcome : out.schedule.outcomes()) {
    if (outcome.job.id == 1) {
      EXPECT_FALSE(outcome.missed);
      EXPECT_LE(outcome.time, 21.0 + 1e-6);
    }
  }
}

/// Paper §4.3 setup: τ1 = (0, 16, 4), τ2 = (5, 12, 1.5) (absolute deadline
/// 17), available energy 32 with no harvest, speeds {0.25, 1.0} at powers
/// {1, 8}.
test::Scenario section43_scenario() {
  Scenario s;
  s.jobs = {job(0, 0.0, 16.0, 4.0), job(1, 5.0, 12.0, 1.5)};
  s.source = std::make_shared<energy::ConstantSource>(0.0);
  s.capacity = 1000.0;
  s.initial = 32.0;
  s.table = proc::FrequencyTable({{250, 0.25, 1.0}, {1000, 1.0, 8.0}});
  s.config.horizon = 30.0;
  return s;
}

TEST(PaperSection43, GreedyStretchingMissesTauTwo) {
  sched::GreedyDvfsScheduler greedy;
  const auto out = run_scenario(section43_scenario(), greedy);
  EXPECT_EQ(out.result.jobs_missed, 1u);
  // The miss is specifically τ2.
  for (const auto& outcome : out.schedule.outcomes())
    if (outcome.missed) EXPECT_EQ(outcome.job.id, 1u);
}

TEST(PaperSection43, EaDvfsMeetsBothDeadlines) {
  sched::EaDvfsScheduler ea;
  const auto out = run_scenario(section43_scenario(), ea);
  EXPECT_EQ(out.result.jobs_missed, 0u);
  EXPECT_EQ(out.result.jobs_completed, 2u);
}

TEST(PaperSection43, EaDvfsSwitchesToFullSpeedAtS2) {
  // The "prevent stealing excessive time" rule: τ1 starts stretched (s1=0,
  // s2=12 per the paper's numbers) and must be running at full speed after
  // s2 until it completes.
  sched::EaDvfsScheduler ea;
  const auto out = run_scenario(section43_scenario(), ea);
  const auto slices = out.schedule.slices_of(0);
  ASSERT_GE(slices.size(), 2u);
  EXPECT_EQ(slices.front().op_index, 0u);  // stretched phase
  EXPECT_EQ(slices.back().op_index, 1u);   // full-speed phase
  // τ1 finishes well before its 16-unit deadline (paper finds 13).
  EXPECT_LT(slices.back().end, 16.0);
}

TEST(PaperSection43, EaDvfsEnergySufficesForTauTwoAtFullPower) {
  // Paper: available energy before τ2's deadline is >= 12 = 1.5 * 8.
  sched::EaDvfsScheduler ea;
  const auto out = run_scenario(section43_scenario(), ea);
  EXPECT_LT(out.result.conservation_error(), 1e-6);
  EXPECT_LE(out.result.consumed, 32.0 + 1e-6);
}

}  // namespace
}  // namespace eadvfs
