/// Golden decision trace on the paper's §2 motivational example: the
/// structured trace must *name* the reasoning the paper walks through.
/// LSA's trace reads "procrastinate, then full speed"; EA-DVFS's reads
/// "wait for energy, then stretch at the minimum feasible operating point"
/// — a lower frequency and a later start than LSA's full-power burst, which
/// is the whole argument of the paper made machine-checkable.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "../support/scenario.hpp"
#include "obs/decision_trace.hpp"
#include "sched/ea_dvfs_scheduler.hpp"
#include "sched/lsa_scheduler.hpp"

namespace eadvfs {
namespace {

using test::job;
using test::Scenario;

/// Paper §2: τ1 = (0, 16, 4), τ2 = (5, 16, 1.5), E_C(0) = 24, P_S = 0.5,
/// two speeds with P_max = 8 (half speed at one third the power).
Scenario section2_scenario() {
  Scenario s;
  s.jobs = {job(0, 0.0, 16.0, 4.0), job(1, 5.0, 16.0, 1.5)};
  s.source = std::make_shared<energy::ConstantSource>(0.5);
  s.capacity = 1000.0;
  s.initial = 24.0;
  s.table = proc::FrequencyTable::two_speed(8.0);
  s.config.horizon = 30.0;
  return s;
}

struct TracedOutcome {
  test::ScenarioOutcome outcome;
  std::vector<sim::DecisionRecord> records;
};

TracedOutcome run_traced(sim::Scheduler& scheduler) {
  TracedOutcome traced;
  obs::DecisionTraceObserver trace;
  Scenario s = section2_scenario();
  s.observers.push_back(&trace);
  traced.outcome = test::run_scenario(std::move(s), scheduler);
  traced.records = trace.records();
  return traced;
}

/// The rule sequence of a trace with consecutive duplicates collapsed
/// ("wait,wait,stretch" -> {"wait","stretch"}).
std::vector<std::string> rule_phases(
    const std::vector<sim::DecisionRecord>& records) {
  std::vector<std::string> phases;
  for (const auto& r : records)
    if (phases.empty() || phases.back() != r.rule) phases.emplace_back(r.rule);
  return phases;
}

TEST(DecisionTraceGolden, LsaProcrastinatesThenRunsFullSpeed) {
  sched::LsaScheduler lsa;
  const auto traced = run_traced(lsa);
  ASSERT_FALSE(traced.records.empty());

  // Phase structure: procrastinate (idle until s2 = 12), then full speed.
  const auto phases = rule_phases(traced.records);
  ASSERT_GE(phases.size(), 2u);
  EXPECT_EQ(phases[0], "procrastinate");
  EXPECT_EQ(phases[1], "full-speed");

  // The first decision idles τ1 with a planned start of s2 = 12 (paper:
  // "starts at 12"), and the full-speed run uses the top operating point.
  const sim::DecisionRecord& first = traced.records.front();
  EXPECT_FALSE(first.run);
  EXPECT_NEAR(first.start, 12.0, 1e-6);
  for (const auto& r : traced.records) {
    if (r.run && std::string(r.rule) == "full-speed") {
      EXPECT_EQ(r.chosen_op, 1u);  // two_speed: index 1 is full speed.
    }
  }
}

TEST(DecisionTraceGolden, EaDvfsWaitsThenStretchesAtMinFeasible) {
  sched::EaDvfsScheduler ea;
  const auto traced = run_traced(ea);
  ASSERT_FALSE(traced.records.empty());

  // Phase structure: wait-for-energy (stored 24 < 4*8 = 32 needed at full
  // power), then stretch at the ineq. (6) minimum feasible point.
  const auto phases = rule_phases(traced.records);
  ASSERT_GE(phases.size(), 2u);
  EXPECT_EQ(phases[0], "wait-for-energy");
  EXPECT_EQ(phases[1], "stretch-min-feasible");

  // Every stretched decision records its inputs: stored energy, the
  // prediction it consulted, and the minimum feasible operating point.
  for (const auto& r : traced.records) {
    if (std::string(r.rule) != "stretch-min-feasible") continue;
    EXPECT_TRUE(r.run);
    EXPECT_TRUE(r.has_min_feasible);
    EXPECT_EQ(r.chosen_op, r.min_feasible_op);
    EXPECT_GT(r.stored, 0.0);
  }
}

TEST(DecisionTraceGolden, EaDvfsRunsSlowerAndLaterThanLsa) {
  // The paper's comparison, asserted on the traces themselves: EA-DVFS
  // executes τ1 at a lower operating point than LSA's full-speed burst and
  // first starts running strictly later than t = 0 (it waits for energy,
  // LSA waits for s2 — both idle first, but EA-DVFS's *executed* frequency
  // is lower).
  sched::LsaScheduler lsa;
  sched::EaDvfsScheduler ea;
  const auto lsa_traced = run_traced(lsa);
  const auto ea_traced = run_traced(ea);

  std::size_t lsa_max_op = 0, ea_max_op = 0;
  for (const auto& r : lsa_traced.records)
    if (r.run) lsa_max_op = std::max(lsa_max_op, r.chosen_op);
  for (const auto& r : ea_traced.records)
    if (r.run) ea_max_op = std::max(ea_max_op, r.chosen_op);
  EXPECT_LT(ea_max_op, lsa_max_op);

  // Both schedules meet τ1's deadline; only EA-DVFS also saves τ2.
  EXPECT_EQ(lsa_traced.outcome.result.jobs_missed, 1u);
  EXPECT_EQ(ea_traced.outcome.result.jobs_missed, 0u);

  // Decision indices are the 0-based sequence within each run.
  for (std::size_t i = 0; i < ea_traced.records.size(); ++i)
    EXPECT_EQ(ea_traced.records[i].index, i);
}

}  // namespace
}  // namespace eadvfs
