/// Structural properties the paper states about EA-DVFS (§4.3) and the
/// relationships between the schedulers, checked end to end.

#include <gtest/gtest.h>

#include <memory>

#include "../support/scenario.hpp"
#include "sched/ea_dvfs_scheduler.hpp"
#include "sched/edf_scheduler.hpp"
#include "sched/factory.hpp"
#include "sched/lsa_scheduler.hpp"
#include "task/generator.hpp"
#include "util/rng.hpp"

namespace eadvfs {
namespace {

using test::run_scenario;
using test::Scenario;

task::TaskSet random_set(std::uint64_t seed, double utilization) {
  task::GeneratorConfig cfg;
  cfg.target_utilization = utilization;
  task::TaskSetGenerator gen(cfg);
  util::Xoshiro256ss rng(seed);
  return gen.generate(rng);
}

Scenario infinite_energy_scenario(std::uint64_t seed, double utilization) {
  Scenario s;
  s.task_set = random_set(seed, utilization);
  s.source = std::make_shared<energy::ConstantSource>(0.0);
  s.capacity = kHuge;
  s.initial = 1e15;  // effectively infinite stored energy
  s.config.horizon = 2000.0;
  return s;
}

/// Paper §4.3, special case: "when the energy storage capacity is infinite,
/// the proposed energy aware DVFS algorithm is reduced to EDF."
TEST(PaperProperties, EaDvfsEqualsEdfWithInfiniteStorage) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    sched::EaDvfsScheduler ea;
    const auto ea_out = run_scenario(infinite_energy_scenario(seed, 0.6), ea);
    sched::EdfScheduler edf;
    const auto edf_out = run_scenario(infinite_energy_scenario(seed, 0.6), edf);

    // Identical job outcomes...
    EXPECT_EQ(ea_out.result.jobs_completed, edf_out.result.jobs_completed);
    EXPECT_EQ(ea_out.result.jobs_missed, edf_out.result.jobs_missed);
    // ...and the identical schedule, slice by slice, all at f_max.
    ASSERT_EQ(ea_out.schedule.slices().size(), edf_out.schedule.slices().size())
        << "seed " << seed;
    for (std::size_t i = 0; i < ea_out.schedule.slices().size(); ++i) {
      const auto& a = ea_out.schedule.slices()[i];
      const auto& b = edf_out.schedule.slices()[i];
      EXPECT_EQ(a.job, b.job);
      EXPECT_EQ(a.op_index, b.op_index);
      EXPECT_EQ(a.op_index, 4u);
      EXPECT_NEAR(a.start, b.start, 1e-9);
      EXPECT_NEAR(a.end, b.end, 1e-9);
    }
  }
}

/// LSA with infinite energy also reduces to EDF (its wait condition is
/// immediately satisfied).
TEST(PaperProperties, LsaEqualsEdfWithInfiniteStorage) {
  for (std::uint64_t seed : {7ull, 8ull}) {
    sched::LsaScheduler lsa;
    const auto lsa_out = run_scenario(infinite_energy_scenario(seed, 0.5), lsa);
    sched::EdfScheduler edf;
    const auto edf_out = run_scenario(infinite_energy_scenario(seed, 0.5), edf);
    EXPECT_EQ(lsa_out.result.jobs_missed, edf_out.result.jobs_missed);
    EXPECT_NEAR(lsa_out.result.busy_time, edf_out.result.busy_time, 1e-6);
  }
}

/// With infinite energy and U <= 1, EDF meets every deadline (classic EDF
/// optimality, which the energy layer must not break).
TEST(PaperProperties, EdfOptimalityHoldsWithInfiniteEnergy) {
  for (std::uint64_t seed : {11ull, 12ull, 13ull}) {
    for (double u : {0.3, 0.7, 0.95}) {
      sched::EdfScheduler edf;
      const auto out = run_scenario(infinite_energy_scenario(seed, u), edf);
      EXPECT_EQ(out.result.jobs_missed, 0u) << "seed " << seed << " U " << u;
    }
  }
}

/// EA-DVFS is work-conserving in terms of delivered work when energy is
/// infinite: it completes exactly what EDF completes.
TEST(PaperProperties, NoWorkLostUnderInfiniteEnergy) {
  sched::EaDvfsScheduler ea;
  const auto out = run_scenario(infinite_energy_scenario(21, 0.8), ea);
  EXPECT_DOUBLE_EQ(out.result.work_dropped, 0.0);
  EXPECT_EQ(out.result.jobs_missed, 0u);
}

/// The paper's central energy argument: at reduced speed the *energy per
/// unit work* is lower, so for the same workload EA-DVFS consumes no more
/// energy than LSA whenever both complete everything.
TEST(PaperProperties, EaDvfsNeverConsumesMoreWhenBothMeetAllDeadlines) {
  for (std::uint64_t seed : {31ull, 32ull, 33ull}) {
    auto make = [&](double capacity) {
      Scenario s;
      s.task_set = random_set(seed, 0.3);
      s.source = std::make_shared<energy::ConstantSource>(2.0);
      s.capacity = capacity;
      s.config.horizon = 1000.0;
      return s;
    };
    sched::EaDvfsScheduler ea;
    sched::LsaScheduler lsa;
    const auto ea_out = run_scenario(make(300.0), ea);
    const auto lsa_out = run_scenario(make(300.0), lsa);
    if (ea_out.result.jobs_missed == 0 && lsa_out.result.jobs_missed == 0) {
      EXPECT_LE(ea_out.result.consumed, lsa_out.result.consumed + 1e-6)
          << "seed " << seed;
    }
  }
}

/// Deadline misses in this simulator come only from energy scarcity: the
/// task sets are EDF-schedulable (U <= 1), so a huge storage bank must
/// eliminate all misses for every scheduler.
TEST(PaperProperties, LargeStorageEliminatesMisses) {
  for (const char* name : {"edf", "lsa", "ea-dvfs"}) {
    Scenario s;
    s.task_set = random_set(41, 0.6);
    s.source = std::make_shared<energy::ConstantSource>(0.0);
    s.capacity = 1e9;
    s.config.horizon = 2000.0;
    auto scheduler = sched::make_scheduler(name);
    const auto out = run_scenario(std::move(s), *scheduler);
    EXPECT_EQ(out.result.jobs_missed, 0u) << name;
  }
}

}  // namespace
}  // namespace eadvfs
