/// Golden regression pins: exact end-to-end results for fixed seeds.
///
/// These values were captured from a verified build; they intentionally
/// over-constrain the simulator so that ANY behavioural change — RNG
/// stream, engine segmentation, scheduler arithmetic, predictor updates —
/// shows up as a diff here rather than as a silent shift in the paper
/// reproduction numbers.  If a change is *intended* (documented in the
/// commit), re-capture the constants.

#include <gtest/gtest.h>

#include <memory>

#include "../support/scenario.hpp"
#include "energy/solar_source.hpp"
#include "sched/factory.hpp"
#include "task/generator.hpp"
#include "util/rng.hpp"

namespace eadvfs {
namespace {

struct Golden {
  const char* scheduler;
  std::size_t released;
  std::size_t completed;
  std::size_t missed;
};

sim::SimulationResult run_reference(const std::string& scheduler_name) {
  task::GeneratorConfig gen_cfg;
  gen_cfg.target_utilization = 0.5;
  task::TaskSetGenerator gen(gen_cfg);
  util::Xoshiro256ss rng(20080310);
  test::Scenario s;
  s.task_set = gen.generate(rng);
  energy::SolarSourceConfig solar;
  solar.seed = 424242;
  solar.horizon = 2000.0;
  s.source = std::make_shared<energy::SolarSource>(solar);
  s.capacity = 60.0;
  s.config.horizon = 2000.0;
  const auto scheduler = sched::make_scheduler(scheduler_name);
  return test::run_scenario(std::move(s), *scheduler).result;
}

TEST(GoldenPins, ReferenceWorkloadIsStable) {
  // Workload derived from seed 20080310 must itself be pinned first: if
  // these fail, the RNG or generator changed and everything below follows.
  task::GeneratorConfig gen_cfg;
  gen_cfg.target_utilization = 0.5;
  task::TaskSetGenerator gen(gen_cfg);
  util::Xoshiro256ss rng(20080310);
  const task::TaskSet set = gen.generate(rng);
  ASSERT_EQ(set.size(), 5u);
  EXPECT_NEAR(set.utilization(), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(set.at(0).period, 60.0);
  EXPECT_DOUBLE_EQ(set.at(1).period, 90.0);
  EXPECT_DOUBLE_EQ(set.at(2).period, 80.0);
  EXPECT_DOUBLE_EQ(set.at(3).period, 80.0);
  EXPECT_DOUBLE_EQ(set.at(4).period, 20.0);
  EXPECT_NEAR(set.at(0).wcet, 8.6545745878455893, 1e-12);
}

TEST(GoldenPins, SolarSourceIsStable) {
  energy::SolarSourceConfig solar;
  solar.seed = 424242;
  solar.horizon = 2000.0;
  const energy::SolarSource source(solar);
  EXPECT_NEAR(source.power_at(0.0), 21.77687372875322, 1e-12);
  EXPECT_NEAR(source.power_at(100.0), 5.6975241276209907, 1e-12);
  EXPECT_NEAR(source.energy_between(0.0, 1000.0), 4250.257675412995, 1e-6);
}

TEST(GoldenPins, EndToEndOutcomesAreStable) {
  const Golden goldens[] = {
      {"edf", 207, 176, 30},
      {"lsa", 207, 169, 37},
      {"ea-dvfs", 207, 191, 15},
      {"ea-dvfs-static", 207, 193, 13},
      {"greedy-dvfs", 207, 114, 91},
  };
  for (const Golden& g : goldens) {
    const sim::SimulationResult r = run_reference(g.scheduler);
    EXPECT_EQ(r.jobs_released, g.released) << g.scheduler;
    EXPECT_EQ(r.jobs_completed, g.completed) << g.scheduler;
    EXPECT_EQ(r.jobs_missed, g.missed) << g.scheduler;
    EXPECT_LT(r.conservation_error(), 1e-5) << g.scheduler;
  }
}

}  // namespace
}  // namespace eadvfs
