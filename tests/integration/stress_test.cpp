/// Stress/robustness sweeps: extreme parameter corners where floating-point
/// and boundary bugs live.  Every run must terminate, conserve energy, and
/// keep its bookkeeping consistent — no assertions about performance.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "../support/scenario.hpp"
#include "energy/markov_weather_source.hpp"
#include "energy/solar_source.hpp"
#include "energy/two_mode_source.hpp"
#include "sched/factory.hpp"
#include "task/generator.hpp"
#include "util/rng.hpp"

namespace eadvfs {
namespace {

struct StressCase {
  std::string label;
  std::string scheduler;
  double utilization;
  double capacity;
  double overhead_time;
  double overhead_energy;
  double bcet;
  std::string source;  // "solar" | "two-mode" | "markov" | "dark" | "flood"
  sim::MissPolicy miss_policy;
};

class StressTest : public ::testing::TestWithParam<StressCase> {};

std::shared_ptr<const energy::EnergySource> make_source(const std::string& kind,
                                                        Time horizon,
                                                        std::uint64_t seed) {
  if (kind == "solar") {
    energy::SolarSourceConfig cfg;
    cfg.seed = seed;
    cfg.horizon = horizon;
    return std::make_shared<energy::SolarSource>(cfg);
  }
  if (kind == "markov") {
    energy::MarkovWeatherConfig cfg;
    cfg.seed = seed;
    cfg.horizon = horizon;
    return std::make_shared<energy::MarkovWeatherSource>(cfg);
  }
  if (kind == "two-mode") {
    energy::TwoModeSourceConfig cfg;
    cfg.day_power = 6.0;
    cfg.night_power = 0.0;
    cfg.day_duration = 37.0;   // deliberately not commensurate with periods
    cfg.night_duration = 61.0;
    return std::make_shared<energy::TwoModeSource>(cfg);
  }
  if (kind == "dark") return std::make_shared<energy::ConstantSource>(0.0);
  if (kind == "flood") return std::make_shared<energy::ConstantSource>(50.0);
  throw std::logic_error("bad source kind");
}

TEST_P(StressTest, TerminatesAndStaysConsistent) {
  const StressCase& c = GetParam();
  const Time horizon = 1500.0;

  task::GeneratorConfig gen_cfg;
  gen_cfg.target_utilization = c.utilization;
  gen_cfg.n_tasks = 6;
  task::TaskSetGenerator gen(gen_cfg);
  util::Xoshiro256ss rng(99);

  test::Scenario s;
  s.task_set = gen.generate(rng);
  s.source = make_source(c.source, horizon, 1234);
  s.capacity = c.capacity;
  s.overhead = {c.overhead_time, c.overhead_energy};
  s.config.horizon = horizon;
  s.config.miss_policy = c.miss_policy;

  // Execution-time model requires going through the releaser; emulate with
  // the TaskSet path by constructing everything manually for bcet < 1.
  task::ExecutionTimeModel execution;
  execution.bcet_fraction = c.bcet;
  execution.seed = 4321;

  energy::EnergyStorage storage = energy::EnergyStorage::ideal(s.capacity);
  proc::Processor processor(s.table, s.overhead);
  energy::OraclePredictor predictor(s.source);
  const auto scheduler = sched::make_scheduler(c.scheduler);
  task::JobReleaser releaser(s.task_set, horizon, execution);
  sim::Engine engine(s.config, *s.source, storage, processor, predictor,
                     *scheduler, releaser);
  const sim::SimulationResult result = engine.run();

  EXPECT_LT(result.conservation_error(), 1e-4) << c.label;
  EXPECT_NEAR(result.end_time, horizon, 1e-6) << c.label;
  EXPECT_EQ(result.jobs_released, result.jobs_completed + result.jobs_missed +
                                      result.jobs_unresolved)
      << c.label;
  EXPECT_GE(result.storage_final, -1e-6) << c.label;
  EXPECT_LE(result.storage_final, c.capacity + 1e-6) << c.label;
  EXPECT_NEAR(result.busy_time + result.idle_time + result.stall_time, horizon,
              1e-5)
      << c.label;
}

INSTANTIATE_TEST_SUITE_P(
    Corners, StressTest,
    ::testing::Values(
        StressCase{"tiny_storage", "ea-dvfs", 0.5, 0.5, 0, 0, 1.0, "solar",
                   sim::MissPolicy::kDropAtDeadline},
        StressCase{"huge_storage", "ea-dvfs", 0.5, 1e9, 0, 0, 1.0, "solar",
                   sim::MissPolicy::kDropAtDeadline},
        StressCase{"full_load", "ea-dvfs", 0.999, 100.0, 0, 0, 1.0, "solar",
                   sim::MissPolicy::kDropAtDeadline},
        StressCase{"dark_world", "ea-dvfs", 0.6, 50.0, 0, 0, 1.0, "dark",
                   sim::MissPolicy::kDropAtDeadline},
        StressCase{"dark_world_continue", "lsa", 0.6, 50.0, 0, 0, 1.0, "dark",
                   sim::MissPolicy::kContinueLate},
        StressCase{"flooded", "lsa", 0.3, 10.0, 0, 0, 1.0, "flood",
                   sim::MissPolicy::kDropAtDeadline},
        StressCase{"two_mode_nights", "ea-dvfs", 0.7, 30.0, 0, 0, 1.0,
                   "two-mode", sim::MissPolicy::kDropAtDeadline},
        StressCase{"markov_weather", "ea-dvfs", 0.5, 80.0, 0, 0, 1.0, "markov",
                   sim::MissPolicy::kDropAtDeadline},
        StressCase{"costly_switches", "ea-dvfs", 0.5, 60.0, 0.4, 1.0, 1.0,
                   "solar", sim::MissPolicy::kDropAtDeadline},
        StressCase{"early_finishers", "ea-dvfs", 0.8, 60.0, 0, 0, 0.1, "solar",
                   sim::MissPolicy::kDropAtDeadline},
        StressCase{"greedy_overload", "greedy-dvfs", 0.95, 40.0, 0, 0, 1.0,
                   "solar", sim::MissPolicy::kDropAtDeadline},
        StressCase{"static_plans", "ea-dvfs-static", 0.6, 50.0, 0, 0, 1.0,
                   "solar", sim::MissPolicy::kDropAtDeadline},
        StressCase{"edf_continue_overload", "edf", 0.9, 20.0, 0, 0, 1.0,
                   "two-mode", sim::MissPolicy::kContinueLate}),
    [](const ::testing::TestParamInfo<StressCase>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace eadvfs
