/// Differential testing of the exact discrete-event engine against the naive
/// fixed-step reference in tests/support/reference_sim.hpp.  The two
/// integrators share no code: the engine computes event instants in closed
/// form, the reference brute-forces small time steps.  Agreement of end
/// states pins down the engine's event algebra; the first scenario is also
/// checked against values computed by hand so a simultaneous bug in both
/// implementations cannot hide.

#include <gtest/gtest.h>

#include <memory>

#include "energy/source.hpp"
#include "energy/two_mode_source.hpp"
#include "sched/factory.hpp"
#include "../support/reference_sim.hpp"
#include "../support/scenario.hpp"

namespace eadvfs {
namespace {

using test::job;
using test::ReferenceResult;
using test::run_reference;
using test::run_scenario;
using test::Scenario;

/// Two jobs on the two-point table (speeds 0.5/1.0 at 1 W / 3 W), EDF (always
/// full speed), constant 1 W source, storage 100 J starting at 50 J:
///   J1: arrival 0, deadline 10, work 4  -> runs [0, 4), consumes 12 J
///   J2: arrival 0, deadline 20, work 2  -> runs [4, 6), consumes  6 J
///   idle [6, 20), idle power 0.
/// Hand totals over horizon 20: harvested 20 J, consumed 18 J, overflow 0,
/// final level 50 - 6*2 + 14*1 = 52 J, both jobs on time, work 6.
Scenario two_job_scenario() {
  Scenario s;
  s.jobs = {job(1, 0.0, 10.0, 4.0), job(2, 0.0, 20.0, 2.0)};
  s.source = std::make_shared<energy::ConstantSource>(1.0);
  s.capacity = 100.0;
  s.initial = 50.0;
  s.table = proc::FrequencyTable::two_speed(3.0);
  s.config.horizon = 20.0;
  return s;
}

TEST(DifferentialOracle, HandComputedTwoJobScenarioMatchesEngine) {
  const auto scheduler = sched::make_scheduler("edf");
  const auto outcome = run_scenario(two_job_scenario(), *scheduler);

  EXPECT_EQ(outcome.result.jobs_released, 2u);
  EXPECT_EQ(outcome.result.jobs_completed, 2u);
  EXPECT_EQ(outcome.result.jobs_missed, 0u);
  EXPECT_NEAR(outcome.result.harvested, 20.0, 1e-9);
  EXPECT_NEAR(outcome.result.consumed, 18.0, 1e-9);
  EXPECT_NEAR(outcome.result.overflow, 0.0, 1e-9);
  EXPECT_NEAR(outcome.result.storage_final, 52.0, 1e-9);
  EXPECT_NEAR(outcome.result.busy_time, 6.0, 1e-9);
  EXPECT_NEAR(outcome.result.work_completed, 6.0, 1e-9);
}

TEST(DifferentialOracle, HandComputedTwoJobScenarioMatchesReference) {
  const Scenario s = two_job_scenario();
  const auto scheduler = sched::make_scheduler("edf");
  const ReferenceResult ref = run_reference(s, *scheduler, 0.01);

  EXPECT_EQ(ref.jobs_released, 2u);
  EXPECT_EQ(ref.jobs_completed, 2u);
  EXPECT_EQ(ref.jobs_missed, 0u);
  // O(step) quantization bounds the drift: one step of the largest power.
  EXPECT_NEAR(ref.harvested, 20.0, 0.05);
  EXPECT_NEAR(ref.consumed, 18.0, 0.05);
  EXPECT_NEAR(ref.storage_final, 52.0, 0.1);
  EXPECT_NEAR(ref.work_completed, 6.0, 0.02);
}

TEST(DifferentialOracle, ReferenceRejectsSwitchOverhead) {
  Scenario s = two_job_scenario();
  s.overhead.time = 0.1;
  s.overhead.energy = 0.5;
  const auto scheduler = sched::make_scheduler("edf");
  EXPECT_THROW((void)run_reference(s, *scheduler, 0.01), std::invalid_argument);
}

/// A deterministic workload with real structure: staggered jobs, a day/night
/// source whose mode boundaries sit on the reference's step grid, a small
/// store that actually limits execution, non-ideal charge efficiency and a
/// non-zero idle draw.  Deadlines leave slack so O(step) decision jitter
/// cannot flip a job's outcome.  The non-ideal efficiency is load-bearing:
/// this sweep is what exposed the engine predicting storage-full crossings
/// with the raw net power instead of the effective fill rate
/// net * charge_efficiency (see Engine::execute_segment).
Scenario stress_scenario() {
  Scenario s;
  s.jobs = {
      job(1, 0.0, 30.0, 6.0),  job(2, 5.0, 40.0, 4.0),
      job(3, 20.0, 35.0, 5.0), job(4, 50.0, 60.0, 8.0),
      job(5, 60.0, 50.0, 3.0), job(6, 100.0, 80.0, 10.0),
      job(7, 130.0, 60.0, 4.0), job(8, 150.0, 45.0, 6.0),
  };
  energy::TwoModeSourceConfig src;
  src.day_power = 4.0;
  src.night_power = 0.5;
  src.day_duration = 25.0;
  src.night_duration = 25.0;
  s.source = std::make_shared<energy::TwoModeSource>(src);
  s.capacity = 40.0;
  s.initial = 20.0;
  s.efficiency = 0.9;
  s.idle_power = 0.05;
  s.config.horizon = 200.0;
  return s;
}

class DifferentialSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(DifferentialSweep, EngineMatchesFixedStepReference) {
  const Scenario s = stress_scenario();
  const auto ref_scheduler = sched::make_scheduler(GetParam());
  // 10 steps of deadline grace: Greedy-DVFS finishes jobs exactly at their
  // deadlines, which the quantized loop would otherwise classify as misses
  // (see run_reference).  0.05 time units is far below any real slack here.
  const Time step = 0.005;
  const ReferenceResult ref = run_reference(s, *ref_scheduler, step, 10 * step);

  const auto scheduler = sched::make_scheduler(GetParam());
  const auto outcome = run_scenario(stress_scenario(), *scheduler);

  EXPECT_EQ(outcome.result.jobs_released, ref.jobs_released);
  EXPECT_EQ(outcome.result.jobs_completed, ref.jobs_completed);
  EXPECT_EQ(outcome.result.jobs_missed, ref.jobs_missed);

  // Each decision boundary the reference lands a step late costs at most
  // step * (p_max + p_harvest); with tens of boundaries over the run a 1 J
  // band is generous for step = 0.005 yet far below the ~400 J throughput,
  // so a real accounting bug (a dropped or double-counted segment) fails.
  const Energy tol = 1.0;
  EXPECT_NEAR(outcome.result.harvested, ref.harvested, tol);
  EXPECT_NEAR(outcome.result.consumed, ref.consumed, tol);
  EXPECT_NEAR(outcome.result.overflow, ref.overflow, tol);
  EXPECT_NEAR(outcome.result.storage_final, ref.storage_final, tol);
  EXPECT_NEAR(outcome.result.work_completed, ref.work_completed, 0.5);
}

INSTANTIATE_TEST_SUITE_P(AllOnlineSchedulers, DifferentialSweep,
                         ::testing::Values("edf", "lsa", "ea-dvfs",
                                           "greedy-dvfs"),
                         [](const ::testing::TestParamInfo<const char*>& pi) {
                           std::string name = pi.param;
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

}  // namespace
}  // namespace eadvfs
