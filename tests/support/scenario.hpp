#pragma once

/// \file scenario.hpp
/// Shared test fixture plumbing: build a complete simulation around an
/// explicit job list or task set with a few knobs, run it, and return both
/// the result and a full schedule recording for assertions.

#include <memory>
#include <string>
#include <vector>

#include "energy/predictor.hpp"
#include "energy/source.hpp"
#include "energy/storage.hpp"
#include "proc/processor.hpp"
#include "sim/config.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "task/releaser.hpp"

namespace eadvfs::test {

struct Scenario {
  /// Jobs to release (explicit mode).  Ignored if `task_set` is non-empty.
  std::vector<task::Job> jobs;
  task::TaskSet task_set;

  std::shared_ptr<const energy::EnergySource> source =
      std::make_shared<energy::ConstantSource>(0.0);
  Energy capacity = 1000.0;
  Energy initial = -1.0;  ///< <0 = full.
  proc::FrequencyTable table = proc::FrequencyTable::xscale();
  proc::SwitchOverhead overhead = {};
  /// Default: oracle (exact prediction) so scheduler tests are analytic.
  std::unique_ptr<energy::EnergyPredictor> predictor;
  sim::SimulationConfig config;
};

struct ScenarioOutcome {
  sim::SimulationResult result;
  sim::ScheduleRecorder schedule;
  sim::EnergyTraceRecorder energy_trace{1.0, 0.0};  // re-assigned in run
};

inline task::Job job(task::JobId id, Time arrival, Time relative_deadline,
                     Work wcet) {
  task::Job j;
  j.id = id;
  j.arrival = arrival;
  j.absolute_deadline = arrival + relative_deadline;
  j.wcet = wcet;
  j.remaining = wcet;
  return j;
}

inline ScenarioOutcome run_scenario(Scenario&& scenario, sim::Scheduler& scheduler) {
  energy::StorageConfig storage_cfg;
  storage_cfg.capacity = scenario.capacity;
  storage_cfg.initial = scenario.initial;
  energy::EnergyStorage storage(storage_cfg);
  proc::Processor processor(scenario.table, scenario.overhead);
  std::unique_ptr<energy::EnergyPredictor> predictor =
      scenario.predictor
          ? std::move(scenario.predictor)
          : std::make_unique<energy::OraclePredictor>(scenario.source);
  task::JobReleaser releaser =
      scenario.task_set.empty()
          ? task::JobReleaser(scenario.jobs)
          : task::JobReleaser(scenario.task_set, scenario.config.horizon);

  ScenarioOutcome outcome;
  outcome.energy_trace =
      sim::EnergyTraceRecorder(1.0, scenario.config.horizon);
  sim::Engine engine(scenario.config, *scenario.source, storage, processor,
                     *predictor, scheduler, releaser);
  engine.add_observer(outcome.schedule);
  engine.add_observer(outcome.energy_trace);
  outcome.result = engine.run();
  return outcome;
}

}  // namespace eadvfs::test
