#pragma once

/// \file scenario.hpp
/// Shared test fixture plumbing: build a complete simulation around an
/// explicit job list or task set with a few knobs, run it, and return both
/// the result and a full schedule recording for assertions.
///
/// Every run is audited by default: a sim::AuditObserver (configured from
/// the scheduler's declared contracts) validates segment coverage, energy
/// conservation, scheduling invariants and stream/result consistency, and
/// any violation becomes a test failure at the call site.  Set
/// `Scenario::audit = false` only for tests that deliberately corrupt state.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "energy/predictor.hpp"
#include "energy/source.hpp"
#include "energy/storage.hpp"
#include "proc/processor.hpp"
#include "sim/audit.hpp"
#include "sim/config.hpp"
#include "sim/engine.hpp"
#include "sim/fault/schedule.hpp"
#include "sim/trace.hpp"
#include "task/releaser.hpp"

namespace eadvfs::test {

struct Scenario {
  /// Jobs to release (explicit mode).  Ignored if `task_set` is non-empty.
  std::vector<task::Job> jobs;
  task::TaskSet task_set;

  std::shared_ptr<const energy::EnergySource> source =
      std::make_shared<energy::ConstantSource>(0.0);
  Energy capacity = 1000.0;
  Energy initial = -1.0;  ///< <0 = full.
  double efficiency = 1.0;  ///< storage charge efficiency (0, 1].
  Power leakage = 0.0;      ///< storage self-discharge power.
  Power idle_power = 0.0;   ///< processor draw while not executing.
  proc::FrequencyTable table = proc::FrequencyTable::xscale();
  proc::SwitchOverhead overhead = {};
  /// Default: oracle (exact prediction) so scheduler tests are analytic.
  std::unique_ptr<energy::EnergyPredictor> predictor;
  sim::SimulationConfig config;
  /// Optional fault schedule applied by the engine (storage/switch faults;
  /// harvest faults are modelled by wrapping `source` in FaultedSource).
  /// Must outlive the run.
  const sim::fault::FaultSchedule* faults = nullptr;
  /// Extra borrowed observers, registered after the fixture's own (audit,
  /// schedule, energy trace).  Must outlive the run.
  std::vector<sim::SimObserver*> observers;
  /// Attach the invariant auditor and fail the test on violations.
  bool audit = true;
};

struct ScenarioOutcome {
  sim::SimulationResult result;
  sim::ScheduleRecorder schedule;
  sim::EnergyTraceRecorder energy_trace{1.0, 0.0};  // re-assigned in run
  std::size_t audit_violations = 0;
  std::string audit_report;
};

inline task::Job job(task::JobId id, Time arrival, Time relative_deadline,
                     Work wcet) {
  task::Job j;
  j.id = id;
  j.arrival = arrival;
  j.absolute_deadline = arrival + relative_deadline;
  j.wcet = wcet;
  j.remaining = wcet;
  return j;
}

inline ScenarioOutcome run_scenario(Scenario&& scenario, sim::Scheduler& scheduler) {
  energy::StorageConfig storage_cfg;
  storage_cfg.capacity = scenario.capacity;
  storage_cfg.initial = scenario.initial;
  storage_cfg.charge_efficiency = scenario.efficiency;
  storage_cfg.leakage = scenario.leakage;
  energy::EnergyStorage storage(storage_cfg);
  proc::Processor processor(scenario.table, scenario.overhead,
                            scenario.idle_power);
  std::unique_ptr<energy::EnergyPredictor> predictor =
      scenario.predictor
          ? std::move(scenario.predictor)
          : std::make_unique<energy::OraclePredictor>(scenario.source);
  task::JobReleaser releaser =
      scenario.task_set.empty()
          ? task::JobReleaser(scenario.jobs)
          : task::JobReleaser(scenario.task_set, scenario.config.horizon);

  ScenarioOutcome outcome;
  outcome.energy_trace =
      sim::EnergyTraceRecorder(1.0, scenario.config.horizon);
  sim::Engine engine(scenario.config, *scenario.source, storage, processor,
                     *predictor, scheduler, releaser);
  if (scenario.faults != nullptr) engine.set_fault_schedule(scenario.faults);
  sim::AuditObserver audit(
      sim::AuditConfig::for_run(scenario.config, storage, processor, scheduler));
  if (scenario.audit) engine.observers().add(audit);
  engine.observers().add(outcome.schedule);
  engine.observers().add(outcome.energy_trace);
  for (sim::SimObserver* observer : scenario.observers)
    if (observer != nullptr) engine.observers().add(*observer);
  outcome.result = engine.run();
  if (scenario.audit) {
    audit.finalize(outcome.result);
    outcome.audit_violations = audit.violation_count();
    outcome.audit_report = audit.report();
    EXPECT_TRUE(audit.ok()) << audit.report();
  }
  return outcome;
}

}  // namespace eadvfs::test
