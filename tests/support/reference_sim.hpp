#pragma once

/// \file reference_sim.hpp
/// Differential-testing oracle: a deliberately naive fixed-step re-implementation
/// of the simulation loop.  Where the engine computes exact event instants and
/// integrates each constant-dynamics segment in closed form, this reference
/// advances time in small constant steps, samples the harvest power on the
/// left edge, quantizes releases/deadlines/completions to step boundaries and
/// clamps the storage numerically.  The two implementations share no
/// integration code, so agreement of their end states (within an O(step)
/// tolerance) is strong evidence that the engine's event algebra is right —
/// and a disagreement localizes a bug in one of them.
///
/// Decision points follow the engine's published contract (scheduler.hpp):
/// the scheduler is re-invoked on releases, completions, deadline instants
/// (of every released job — the engine's event queue fires them whether or
/// not the job already finished), source piece boundaries, storage
/// full/empty crossings and at the decision's own `recheck_at` — each
/// detected on the step grid, so every decision lands at most one step
/// after the engine's exact instant.  This
/// matters: re-deciding *every* step would implement a strictly more
/// aggressive policy for schedulers whose choice depends on the decision
/// instant (Greedy-DVFS down-switches the moment ineq. (6) allows, driving
/// completions onto their exact deadlines), and job outcomes would then
/// legitimately differ from the engine's.
///
/// Scope (kept naive on purpose):
///   * explicit job lists only (no task-set expansion) — actual work defaults
///     to the WCET like task::JobReleaser does;
///   * zero DVFS switch overhead (throws otherwise — transition stalls are an
///     engine-exact construct the naive loop does not model).

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "energy/predictor.hpp"
#include "energy/source.hpp"
#include "proc/frequency_table.hpp"
#include "sim/config.hpp"
#include "sim/scheduler.hpp"
#include "task/job.hpp"
#include "util/math.hpp"

#include "scenario.hpp"

namespace eadvfs::test {

struct ReferenceResult {
  std::size_t jobs_released = 0;
  std::size_t jobs_completed = 0;  ///< on time.
  std::size_t jobs_missed = 0;
  Energy storage_final = 0.0;
  Energy harvested = 0.0;
  Energy consumed = 0.0;
  Energy overflow = 0.0;
  Work work_completed = 0.0;
};

/// Re-integrate `scenario` with time step `step`.  The scenario is taken by
/// const reference (run_scenario consumes its own copy), and `scheduler`
/// must be a fresh instance of the same policy the engine run used.
///
/// `deadline_grace` widens the on-time/miss classification by that much
/// simulated time: quantization delays every decision by up to one step, so
/// a job the engine completes exactly at its deadline can land a fraction of
/// a step late here.  A grace of a few steps absorbs that artifact without
/// affecting jobs that have real slack.
inline ReferenceResult run_reference(const Scenario& scenario,
                                     sim::Scheduler& scheduler, Time step,
                                     Time deadline_grace = 0.0) {
  if (scenario.overhead.time > 0.0 || scenario.overhead.energy > 0.0)
    throw std::invalid_argument(
        "run_reference: switch overhead is not modelled by the naive loop");
  if (!scenario.task_set.empty())
    throw std::invalid_argument("run_reference: explicit job lists only");
  if (step <= 0.0) throw std::invalid_argument("run_reference: step must be > 0");

  const Time horizon = scenario.config.horizon;
  const bool drop =
      scenario.config.miss_policy == sim::MissPolicy::kDropAtDeadline;
  const Energy capacity = scenario.capacity;
  Energy level = scenario.initial < 0.0 ? capacity : scenario.initial;

  std::vector<task::Job> pending = scenario.jobs;
  for (task::Job& job : pending) {
    job.remaining = job.wcet;
    if (job.actual_work <= 0.0) job.actual_work = job.wcet;
    job.actual_remaining = job.actual_work;
  }
  std::sort(pending.begin(), pending.end(),
            [](const task::Job& a, const task::Job& b) {
              return a.arrival < b.arrival;
            });
  std::size_t next_pending = 0;

  // Every released job's deadline instant is an engine decision point, even
  // when the job completed earlier (the event queue still fires).  Releases
  // always precede deadlines, so the upfront sorted list is equivalent to
  // enqueuing at release time.
  std::vector<Time> deadline_events;
  deadline_events.reserve(pending.size());
  for (const task::Job& job : pending)
    deadline_events.push_back(job.absolute_deadline);
  std::sort(deadline_events.begin(), deadline_events.end());
  std::size_t next_deadline = 0;

  std::vector<task::Job> ready;  // kept EDF-sorted for SchedulingContext.
  std::vector<task::JobId> missed_live;  // kContinueLate: already counted.
  energy::OraclePredictor predictor(scenario.source);
  scheduler.reset();

  // The decision in force, carried between decision points.
  bool event = true;  // force an initial decision.
  sim::Decision decision;
  Power prev_ps = -1.0;

  ReferenceResult r;
  for (Time t = 0.0; t < horizon - 1e-12; t += step) {
    const Time h = std::min(step, horizon - t);

    // Releases and deadline misses, quantized to the step grid.
    while (next_pending < pending.size() &&
           pending[next_pending].arrival <= t + util::kEps) {
      ready.push_back(pending[next_pending]);
      ++next_pending;
      ++r.jobs_released;
      event = true;
    }
    std::sort(ready.begin(), ready.end(), task::EdfBefore{});
    for (std::size_t i = 0; i < ready.size();) {
      task::Job& job = ready[i];
      const bool counted =
          std::find(missed_live.begin(), missed_live.end(), job.id) !=
          missed_live.end();
      if (job.absolute_deadline + deadline_grace <= t + util::kEps &&
          job.actual_remaining > util::kEps && !counted) {
        ++r.jobs_missed;
        event = true;
        if (drop) {
          ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(i));
          continue;
        }
        missed_live.push_back(job.id);
      }
      ++i;
    }

    while (next_deadline < deadline_events.size() &&
           deadline_events[next_deadline] <= t + util::kEps) {
      ++next_deadline;
      event = true;
    }

    // Re-decide only at the engine's published decision points.
    const Power ps = scenario.source->power_at(t);
    if (ps != prev_ps) event = true;  // source piece boundary.
    prev_ps = ps;
    if (t + 1e-12 >= decision.recheck_at) event = true;
    if (event) {
      decision = ready.empty() ? sim::Decision::idle_until(kHuge)
                               : [&] {
                                   sim::SchedulingContext ctx;
                                   ctx.now = t;
                                   ctx.ready = &ready;
                                   ctx.stored = level;
                                   ctx.predictor = &predictor;
                                   ctx.table = &scenario.table;
                                   return scheduler.decide(ctx);
                                 }();
      event = false;
    }

    bool running = false;
    std::size_t run_index = 0;
    Power draw = scenario.idle_power;
    double speed = 0.0;
    if (decision.kind == sim::Decision::Kind::kRun) {
      bool found = false;
      for (std::size_t i = 0; i < ready.size(); ++i)
        if (ready[i].id == decision.job) {
          run_index = i;
          found = true;
        }
      // A removed job always sets `event`, so a stale decision cannot
      // survive to this point — but stay safe and idle one step if it does.
      if (!found) event = true;
      const proc::OperatingPoint& op = scenario.table.at(decision.op_index);
      // Same physical-feasibility override as the engine.
      if (found && !(level <= util::kEps && op.power > ps + util::kEps)) {
        running = true;
        draw = op.power;
        speed = op.speed;
      }
    }

    // Integrate one step: harvest-first, storage clamped numerically.
    const Energy level_before = level;
    const Energy harvested = ps * h;
    const Energy needed = draw * h;
    r.harvested += harvested;
    if (level <= util::kEps && !running && needed > harvested + util::kEps) {
      r.consumed += harvested;  // brownout: only the harvest is consumable.
    } else {
      r.consumed += needed;
      const Energy net = harvested - needed;
      if (net >= 0.0) {
        const Energy accepted =
            std::min(net * scenario.efficiency, capacity - level);
        level += accepted;
        r.overflow += net - accepted;
      } else {
        level = std::max(0.0, level + net);
      }
    }
    level = std::max(0.0, level - scenario.leakage * h);
    // Storage full/empty crossings are engine decision points.
    if ((level >= capacity - 1e-12) != (level_before >= capacity - 1e-12))
      event = true;
    if ((level <= util::kEps) != (level_before <= util::kEps)) event = true;

    if (running) {
      task::Job& job = ready[run_index];
      job.remaining = util::snap_nonnegative(job.remaining - speed * h);
      job.actual_remaining -= speed * h;
      if (job.actual_remaining <= util::kEps) {
        r.work_completed += job.actual_work;
        if (t + h <= job.absolute_deadline + deadline_grace + util::kEps)
          ++r.jobs_completed;
        ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(run_index));
        event = true;
      }
    }
  }
  r.storage_final = level;
  return r;
}

}  // namespace eadvfs::test
