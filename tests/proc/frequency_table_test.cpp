#include "proc/frequency_table.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace eadvfs::proc {
namespace {

TEST(FrequencyTable, XscaleMatchesPaperTable) {
  const FrequencyTable t = FrequencyTable::xscale();
  ASSERT_EQ(t.size(), 5u);
  EXPECT_DOUBLE_EQ(t.at(0).speed, 0.15);
  EXPECT_DOUBLE_EQ(t.at(0).power, 0.08);
  EXPECT_DOUBLE_EQ(t.at(4).speed, 1.0);
  EXPECT_DOUBLE_EQ(t.at(4).power, 3.2);
  EXPECT_DOUBLE_EQ(t.max_power(), 3.2);
  EXPECT_EQ(t.max_index(), 4u);
}

TEST(FrequencyTable, XscaleEnergyPerWorkIsIncreasing) {
  // The premise of DVFS-for-energy: slower points spend less energy per
  // unit of work.
  const FrequencyTable t = FrequencyTable::xscale();
  for (std::size_t i = 1; i < t.size(); ++i)
    EXPECT_GT(t.at(i).energy_per_work(), t.at(i - 1).energy_per_work());
}

TEST(FrequencyTable, SortsUnorderedInput) {
  const FrequencyTable t({{1000, 1.0, 8.0}, {500, 0.5, 2.0}});
  EXPECT_DOUBLE_EQ(t.at(0).speed, 0.5);
  EXPECT_DOUBLE_EQ(t.at(1).speed, 1.0);
}

TEST(FrequencyTable, TwoSpeedMatchesPaperExample) {
  // Paper §2: high speed twice the low, high power 3x the low.
  const FrequencyTable t = FrequencyTable::two_speed(8.0);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_DOUBLE_EQ(t.at(0).speed, 0.5);
  EXPECT_NEAR(t.at(0).power, 8.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(t.at(1).power, 8.0);
}

TEST(FrequencyTable, CubicTableShape) {
  const FrequencyTable t = FrequencyTable::cubic(4, 3.2);
  ASSERT_EQ(t.size(), 4u);
  EXPECT_DOUBLE_EQ(t.at(3).speed, 1.0);
  EXPECT_DOUBLE_EQ(t.at(3).power, 3.2);
  EXPECT_NEAR(t.at(0).power, 3.2 * 0.25 * 0.25 * 0.25, 1e-12);
}

TEST(FrequencyTable, MinFeasiblePicksSlowestFit) {
  const FrequencyTable t = FrequencyTable::xscale();
  // work 1 into window 10: 1/0.15 = 6.67 <= 10 -> slowest point.
  EXPECT_EQ(t.min_feasible(1.0, 10.0), std::size_t{0});
  // work 5 into window 10: needs speed >= 0.5 -> index 2 (0.6).
  EXPECT_EQ(t.min_feasible(5.0, 10.0), std::size_t{2});
  // work 9.9 into window 10: needs ~0.99 -> f_max.
  EXPECT_EQ(t.min_feasible(9.9, 10.0), std::size_t{4});
}

TEST(FrequencyTable, MinFeasibleExactFitCounts) {
  const FrequencyTable t = FrequencyTable::two_speed(8.0);
  // The paper's Fig. 3 walkthrough relies on an exact fit (4 / 0.25 = 16).
  EXPECT_EQ(t.min_feasible(5.0, 10.0), std::size_t{0});  // 5/0.5 == 10
}

TEST(FrequencyTable, MinFeasibleInfeasibleReturnsNullopt) {
  const FrequencyTable t = FrequencyTable::xscale();
  EXPECT_FALSE(t.min_feasible(11.0, 10.0).has_value());
  EXPECT_FALSE(t.min_feasible(1.0, 0.0).has_value());
  EXPECT_FALSE(t.min_feasible(1.0, -5.0).has_value());
}

TEST(FrequencyTable, MinFeasibleZeroWork) {
  const FrequencyTable t = FrequencyTable::xscale();
  EXPECT_EQ(t.min_feasible(0.0, 10.0), std::size_t{0});
}

TEST(FrequencyTable, MinFeasibleNegativeWorkThrows) {
  const FrequencyTable t = FrequencyTable::xscale();
  EXPECT_THROW((void)t.min_feasible(-1.0, 10.0), std::invalid_argument);
}

TEST(FrequencyTable, ValidationRejectsBadTables) {
  EXPECT_THROW(FrequencyTable({}), std::invalid_argument);
  // Fastest speed must be 1.
  EXPECT_THROW(FrequencyTable({{500, 0.5, 1.0}}), std::invalid_argument);
  // Speed outside (0, 1].
  EXPECT_THROW(FrequencyTable({{0, 0.0, 1.0}, {1000, 1.0, 2.0}}),
               std::invalid_argument);
  EXPECT_THROW(FrequencyTable({{1200, 1.2, 1.0}}), std::invalid_argument);
  // Non-positive power.
  EXPECT_THROW(FrequencyTable({{1000, 1.0, 0.0}}), std::invalid_argument);
  // Duplicate speed.
  EXPECT_THROW(FrequencyTable({{900, 1.0, 2.0}, {1000, 1.0, 3.0}}),
               std::invalid_argument);
  // Power must increase with speed.
  EXPECT_THROW(FrequencyTable({{500, 0.5, 3.0}, {1000, 1.0, 2.0}}),
               std::invalid_argument);
  // Energy-per-work must not decrease with speed (0.5 -> 4/unit, 1.0 ->
  // 3.9/unit would make slowing down *waste* energy).
  EXPECT_THROW(FrequencyTable({{500, 0.5, 2.0}, {1000, 1.0, 3.9}}),
               std::invalid_argument);
}

TEST(FrequencyTable, FactoryValidation) {
  EXPECT_THROW((void)FrequencyTable::two_speed(0.0), std::invalid_argument);
  EXPECT_THROW((void)FrequencyTable::cubic(0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)FrequencyTable::cubic(3, -1.0), std::invalid_argument);
}

TEST(FrequencyTable, DescribeListsPoints) {
  const std::string text = FrequencyTable::xscale().describe();
  EXPECT_NE(text.find("5 operating points"), std::string::npos);
  EXPECT_NE(text.find("3.2"), std::string::npos);
}

TEST(FrequencyTable, AtOutOfRangeThrows) {
  const FrequencyTable t = FrequencyTable::two_speed(8.0);
  EXPECT_THROW((void)t.at(2), std::out_of_range);
}

}  // namespace
}  // namespace eadvfs::proc
