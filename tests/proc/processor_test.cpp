#include "proc/processor.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace eadvfs::proc {
namespace {

Processor make_processor(SwitchOverhead overhead = {}) {
  return Processor(FrequencyTable::xscale(), overhead);
}

TEST(Processor, StartsAtSlowestPoint) {
  Processor p = make_processor();
  EXPECT_EQ(p.current(), 0u);
  EXPECT_DOUBLE_EQ(p.current_point().speed, 0.15);
}

TEST(Processor, SwitchChangesPointAndCounts) {
  Processor p = make_processor();
  p.switch_to(4);
  EXPECT_EQ(p.current(), 4u);
  EXPECT_EQ(p.switch_count(), 1u);
  p.switch_to(2);
  EXPECT_EQ(p.switch_count(), 2u);
}

TEST(Processor, SwitchToSamePointIsFree) {
  Processor p = make_processor({1.0, 2.0});
  p.switch_to(3);
  const SwitchOverhead again = p.switch_to(3);
  EXPECT_DOUBLE_EQ(again.time, 0.0);
  EXPECT_DOUBLE_EQ(again.energy, 0.0);
  EXPECT_EQ(p.switch_count(), 1u);
}

TEST(Processor, SwitchReturnsConfiguredOverhead) {
  Processor p = make_processor({0.5, 1.25});
  const SwitchOverhead cost = p.switch_to(1);
  EXPECT_DOUBLE_EQ(cost.time, 0.5);
  EXPECT_DOUBLE_EQ(cost.energy, 1.25);
}

TEST(Processor, ZeroOverheadByDefault) {
  Processor p = make_processor();
  const SwitchOverhead cost = p.switch_to(4);
  EXPECT_DOUBLE_EQ(cost.time, 0.0);
  EXPECT_DOUBLE_EQ(cost.energy, 0.0);
}

TEST(Processor, TimeAccounting) {
  Processor p = make_processor();
  p.note_busy(3.0);
  p.note_busy(2.0);
  p.note_idle(7.5);
  p.note_stall(0.5);
  EXPECT_DOUBLE_EQ(p.busy_time(), 5.0);
  EXPECT_DOUBLE_EQ(p.idle_time(), 7.5);
  EXPECT_DOUBLE_EQ(p.stall_time(), 0.5);
}

TEST(Processor, ResetClearsDynamicState) {
  Processor p = make_processor();
  p.switch_to(4);
  p.note_busy(10.0);
  p.reset();
  EXPECT_EQ(p.current(), 0u);
  EXPECT_EQ(p.switch_count(), 0u);
  EXPECT_DOUBLE_EQ(p.busy_time(), 0.0);
  EXPECT_DOUBLE_EQ(p.idle_time(), 0.0);
  EXPECT_DOUBLE_EQ(p.stall_time(), 0.0);
}

TEST(Processor, BadSwitchIndexThrows) {
  Processor p = make_processor();
  EXPECT_THROW(p.switch_to(5), std::out_of_range);
}

TEST(Processor, NegativeDurationsThrow) {
  Processor p = make_processor();
  EXPECT_THROW(p.note_busy(-1.0), std::invalid_argument);
  EXPECT_THROW(p.note_idle(-1.0), std::invalid_argument);
  EXPECT_THROW(p.note_stall(-1.0), std::invalid_argument);
}

TEST(Processor, NegativeOverheadRejected) {
  EXPECT_THROW(Processor(FrequencyTable::xscale(), {-1.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(Processor(FrequencyTable::xscale(), {0.0, -1.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace eadvfs::proc
