#include "util/args.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace eadvfs::util {
namespace {

std::vector<const char*> argv_of(std::initializer_list<const char*> items) {
  std::vector<const char*> v{"prog"};
  v.insert(v.end(), items);
  return v;
}

TEST(ArgParser, DefaultsApplyWithoutArguments) {
  ArgParser p("test");
  p.add_option("count", "5", "a count");
  const auto argv = argv_of({});
  ASSERT_TRUE(p.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(p.integer("count"), 5);
}

TEST(ArgParser, SpaceSeparatedValue) {
  ArgParser p("test");
  p.add_option("count", "5", "a count");
  const auto argv = argv_of({"--count", "12"});
  ASSERT_TRUE(p.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(p.integer("count"), 12);
}

TEST(ArgParser, EqualsSeparatedValue) {
  ArgParser p("test");
  p.add_option("ratio", "0.5", "a ratio");
  const auto argv = argv_of({"--ratio=0.75"});
  ASSERT_TRUE(p.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_DOUBLE_EQ(p.real("ratio"), 0.75);
}

TEST(ArgParser, FlagsDefaultFalseAndSet) {
  ArgParser p("test");
  p.add_flag("verbose", "talk more");
  {
    const auto argv = argv_of({});
    ArgParser q = p;
    ASSERT_TRUE(q.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_FALSE(q.flag("verbose"));
  }
  {
    const auto argv = argv_of({"--verbose"});
    ASSERT_TRUE(p.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_TRUE(p.flag("verbose"));
  }
}

TEST(ArgParser, HelpReturnsFalse) {
  ArgParser p("test");
  p.add_option("x", "1", "x");
  const auto argv = argv_of({"--help"});
  EXPECT_FALSE(p.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(ArgParser, UnknownOptionThrows) {
  ArgParser p("test");
  const auto argv = argv_of({"--nope", "1"});
  EXPECT_THROW(p.parse(static_cast<int>(argv.size()), argv.data()),
               std::invalid_argument);
}

TEST(ArgParser, MissingValueThrows) {
  ArgParser p("test");
  p.add_option("x", "1", "x");
  const auto argv = argv_of({"--x"});
  EXPECT_THROW(p.parse(static_cast<int>(argv.size()), argv.data()),
               std::invalid_argument);
}

TEST(ArgParser, PositionalArgumentThrows) {
  ArgParser p("test");
  const auto argv = argv_of({"stray"});
  EXPECT_THROW(p.parse(static_cast<int>(argv.size()), argv.data()),
               std::invalid_argument);
}

TEST(ArgParser, FlagWithValueThrows) {
  ArgParser p("test");
  p.add_flag("fast", "go fast");
  const auto argv = argv_of({"--fast=yes"});
  EXPECT_THROW(p.parse(static_cast<int>(argv.size()), argv.data()),
               std::invalid_argument);
}

TEST(ArgParser, MalformedNumberThrows) {
  ArgParser p("test");
  p.add_option("n", "1", "n");
  const auto argv = argv_of({"--n", "12abc"});
  ASSERT_TRUE(p.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_THROW((void)p.integer("n"), std::invalid_argument);
  EXPECT_THROW((void)p.real("n"), std::invalid_argument);
}

TEST(ArgParser, RealListParsesCommaSeparated) {
  ArgParser p("test");
  p.add_option("caps", "200,300,500", "capacities");
  const auto argv = argv_of({});
  ASSERT_TRUE(p.parse(static_cast<int>(argv.size()), argv.data()));
  const auto caps = p.real_list("caps");
  ASSERT_EQ(caps.size(), 3u);
  EXPECT_DOUBLE_EQ(caps[1], 300.0);
}

TEST(ArgParser, StrListSkipsEmptyItems) {
  ArgParser p("test");
  p.add_option("names", "a,,b", "names");
  const auto argv = argv_of({});
  ASSERT_TRUE(p.parse(static_cast<int>(argv.size()), argv.data()));
  const auto names = p.str_list("names");
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
}

TEST(ArgParser, QueryingFlagAsOptionThrows) {
  ArgParser p("test");
  p.add_flag("fast", "go fast");
  p.add_option("x", "1", "x");
  EXPECT_THROW((void)p.str("fast"), std::logic_error);
  EXPECT_THROW((void)p.flag("x"), std::logic_error);
  EXPECT_THROW((void)p.str("undeclared"), std::logic_error);
}

TEST(ArgParser, DuplicateDeclarationThrows) {
  ArgParser p("test");
  p.add_option("x", "1", "x");
  EXPECT_THROW(p.add_flag("x", "again"), std::logic_error);
}

TEST(ArgParser, ProvidedDistinguishesExplicitFromDefault) {
  ArgParser p("test");
  p.add_option("x", "1", "x");
  p.add_option("y", "2", "y");
  p.add_flag("fast", "go fast");
  const auto argv = argv_of({"--x", "5", "--fast"});
  ASSERT_TRUE(p.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_TRUE(p.provided("x"));
  EXPECT_FALSE(p.provided("y"));
  EXPECT_TRUE(p.provided("fast"));
  EXPECT_THROW((void)p.provided("undeclared"), std::logic_error);
}

TEST(ArgParser, RejectsDuplicatedOptions) {
  ArgParser p("test");
  p.add_option("seed", "1", "seed");
  p.add_flag("fast", "go fast");
  {
    const auto argv = argv_of({"--seed", "2", "--seed", "3"});
    EXPECT_THROW(p.parse(static_cast<int>(argv.size()), argv.data()),
                 std::invalid_argument);
  }
  ArgParser q("test");
  q.add_flag("fast", "go fast");
  const auto argv = argv_of({"--fast", "--fast"});
  EXPECT_THROW(q.parse(static_cast<int>(argv.size()), argv.data()),
               std::invalid_argument);
}

TEST(ArgParser, UnknownOptionSuggestsNearestName) {
  ArgParser p("test");
  p.add_option("capacities", "100", "grid");
  p.add_option("seed", "1", "seed");
  const auto argv = argv_of({"--capacitees", "5"});
  try {
    (void)p.parse(static_cast<int>(argv.size()), argv.data());
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("did you mean --capacities"),
              std::string::npos)
        << error.what();
  }
}

TEST(ArgParser, UnknownOptionFarFromEverythingGetsNoSuggestion) {
  ArgParser p("test");
  p.add_option("seed", "1", "seed");
  const auto argv = argv_of({"--zzzzzzzzzz", "5"});
  try {
    (void)p.parse(static_cast<int>(argv.size()), argv.data());
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_EQ(std::string(error.what()).find("did you mean"),
              std::string::npos)
        << error.what();
  }
}

TEST(ArgParser, HelpTextListsOptions) {
  ArgParser p("my tool");
  p.add_option("alpha", "0.3", "ewma weight");
  p.add_flag("quiet", "hush");
  const std::string h = p.help();
  EXPECT_NE(h.find("my tool"), std::string::npos);
  EXPECT_NE(h.find("--alpha"), std::string::npos);
  EXPECT_NE(h.find("ewma weight"), std::string::npos);
  EXPECT_NE(h.find("--quiet"), std::string::npos);
}

}  // namespace
}  // namespace eadvfs::util
