#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace eadvfs::util {
namespace {

TEST(Histogram, BinsValuesCorrectly) {
  Histogram h(0.0, 10.0, 5);  // bins of width 2
  h.add(0.0);   // bin 0
  h.add(1.9);   // bin 0
  h.add(2.0);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 0u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderflowAndOverflowAreCounted) {
  Histogram h(0.0, 1.0, 2);
  h.add(-0.5);
  h.add(1.0);  // hi edge is exclusive -> overflow
  h.add(2.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BinEdges) {
  Histogram h(10.0, 20.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 12.5);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 17.5);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 20.0);
}

TEST(Histogram, FractionsIncludeOutliers) {
  Histogram h(0.0, 1.0, 1);
  h.add(0.5);
  h.add(0.6);
  h.add(5.0);  // overflow
  EXPECT_NEAR(h.fraction(0), 2.0 / 3.0, 1e-12);
}

TEST(Histogram, FractionOfEmptyHistogramIsZero) {
  Histogram h(0.0, 1.0, 3);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
}

TEST(Histogram, AsciiRenderingContainsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const std::string art = h.ascii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find('2'), std::string::npos);
}

TEST(Histogram, RejectsDegenerateConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, OutOfRangeBinQueryThrows) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW((void)h.count(2), std::out_of_range);
}

}  // namespace
}  // namespace eadvfs::util
