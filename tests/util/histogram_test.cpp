#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

namespace eadvfs::util {
namespace {

TEST(Histogram, BinsValuesCorrectly) {
  Histogram h(0.0, 10.0, 5);  // bins of width 2
  h.add(0.0);   // bin 0
  h.add(1.9);   // bin 0
  h.add(2.0);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 0u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderflowAndOverflowAreCounted) {
  Histogram h(0.0, 1.0, 2);
  h.add(-0.5);
  h.add(1.0);  // hi edge is exclusive -> overflow
  h.add(2.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BinEdges) {
  Histogram h(10.0, 20.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 12.5);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 17.5);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 20.0);
}

TEST(Histogram, FractionsIncludeOutliers) {
  Histogram h(0.0, 1.0, 1);
  h.add(0.5);
  h.add(0.6);
  h.add(5.0);  // overflow
  EXPECT_NEAR(h.fraction(0), 2.0 / 3.0, 1e-12);
}

TEST(Histogram, FractionOfEmptyHistogramIsZero) {
  Histogram h(0.0, 1.0, 3);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
}

TEST(Histogram, AsciiRenderingContainsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const std::string art = h.ascii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find('2'), std::string::npos);
  EXPECT_NE(art.find("total: 3\n"), std::string::npos);
}

TEST(Histogram, AsciiDistinguishesEmptyFromFlat) {
  // Both render all-zero-length bars (peak is clamped to 1), so without the
  // footer an empty histogram and a never-filled one were indistinguishable
  // in bench output.  The `total:` footer tells them apart.
  Histogram empty(0.0, 1.0, 4);
  EXPECT_NE(empty.ascii(10).find("total: 0\n"), std::string::npos);
  Histogram filled(0.0, 1.0, 4);
  filled.add(0.1);
  EXPECT_NE(filled.ascii(10).find("total: 1\n"), std::string::npos);
  EXPECT_NE(empty.ascii(10), filled.ascii(10));
}

TEST(Histogram, NanSamplesAreSideCountedNotBinned) {
  // Regression: add(NaN) used to fall through both range guards into the
  // float->size_t bin cast — undefined behavior (UBSan trap).  NaN must be
  // intercepted, counted, and visible in total().
  Histogram h(0.0, 1.0, 4);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(0.5);
  h.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.nan(), 2u);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_EQ(h.count(0) + h.count(1) + h.count(2) + h.count(3), 1u);
  EXPECT_NE(h.ascii(10).find("nan:       2"), std::string::npos);
  // fraction() denominates by total(), which includes the NaN side count.
  EXPECT_NEAR(h.fraction(2), 1.0 / 3.0, 1e-12);
}

TEST(Histogram, MergeSumsAllCounters) {
  Histogram a(0.0, 10.0, 5);
  a.add(1.0);   // bin 0
  a.add(-2.0);  // underflow
  a.add(std::numeric_limits<double>::quiet_NaN());
  Histogram b(0.0, 10.0, 5);
  b.add(1.5);   // bin 0
  b.add(9.0);   // bin 4
  b.add(11.0);  // overflow
  a.merge(b);
  EXPECT_EQ(a.count(0), 2u);
  EXPECT_EQ(a.count(4), 1u);
  EXPECT_EQ(a.underflow(), 1u);
  EXPECT_EQ(a.overflow(), 1u);
  EXPECT_EQ(a.nan(), 1u);
  EXPECT_EQ(a.total(), 6u);
}

TEST(Histogram, MergeRejectsShapeMismatch) {
  Histogram base(0.0, 10.0, 5);
  EXPECT_THROW(base.merge(Histogram(0.0, 10.0, 4)), std::invalid_argument);
  EXPECT_THROW(base.merge(Histogram(0.0, 9.0, 5)), std::invalid_argument);
  EXPECT_THROW(base.merge(Histogram(1.0, 10.0, 5)), std::invalid_argument);
  // The error names the shapes so a fleet-shard mismatch is diagnosable.
  try {
    base.merge(Histogram(0.0, 10.0, 4));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("shape mismatch"),
              std::string::npos);
  }
}

TEST(Histogram, MergeIsOrderIndependent) {
  auto fill = [](Histogram& h, unsigned salt) {
    for (int i = 0; i < 40; ++i)
      h.add(static_cast<double>((i * 7 + salt) % 13) - 1.0);
  };
  Histogram a(0.0, 10.0, 5), b(0.0, 10.0, 5), combined(0.0, 10.0, 5);
  fill(a, 1);
  fill(combined, 1);
  fill(b, 5);
  fill(combined, 5);
  a.merge(b);
  EXPECT_EQ(a.total(), combined.total());
  EXPECT_EQ(a.underflow(), combined.underflow());
  EXPECT_EQ(a.overflow(), combined.overflow());
  for (std::size_t bin = 0; bin < a.bins(); ++bin)
    EXPECT_EQ(a.count(bin), combined.count(bin));
}

TEST(Histogram, RejectsDegenerateConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, OutOfRangeBinQueryThrows) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW((void)h.count(2), std::out_of_range);
}

}  // namespace
}  // namespace eadvfs::util
