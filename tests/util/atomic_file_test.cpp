#include "util/atomic_file.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace eadvfs::util {
namespace {

namespace fs = std::filesystem;

class AtomicFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("eadvfs_atomic_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  [[nodiscard]] std::string slurp(const std::string& p) const {
    std::ifstream in(p);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  }
  /// Count of directory entries — used to prove no temp files are left over.
  [[nodiscard]] std::size_t entries() const {
    std::size_t n = 0;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      (void)entry;
      ++n;
    }
    return n;
  }

  fs::path dir_;
};

TEST_F(AtomicFileTest, WritesNewFile) {
  write_file_atomic(path("out.csv"), "a,b\n1,2\n");
  EXPECT_EQ(slurp(path("out.csv")), "a,b\n1,2\n");
  EXPECT_EQ(entries(), 1u);  // no stray temp file
}

TEST_F(AtomicFileTest, ReplacesExistingFile) {
  write_file_atomic(path("out.csv"), "old\n");
  write_file_atomic(path("out.csv"), "new contents\n");
  EXPECT_EQ(slurp(path("out.csv")), "new contents\n");
  EXPECT_EQ(entries(), 1u);
}

TEST_F(AtomicFileTest, StreamWriterOverload) {
  write_file_atomic(path("out.txt"), [](std::ostream& out) {
    out << "line " << 1 << "\n" << "line " << 2 << "\n";
  });
  EXPECT_EQ(slurp(path("out.txt")), "line 1\nline 2\n");
}

TEST_F(AtomicFileTest, ThrowingWriterLeavesTargetUntouched) {
  write_file_atomic(path("out.txt"), "precious\n");
  EXPECT_THROW(write_file_atomic(path("out.txt"),
                                 [](std::ostream& out) {
                                   out << "partial";
                                   throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The old contents survive and the temp file was cleaned up.
  EXPECT_EQ(slurp(path("out.txt")), "precious\n");
  EXPECT_EQ(entries(), 1u);
}

TEST_F(AtomicFileTest, UnwritableDirectoryThrows) {
  EXPECT_THROW(
      write_file_atomic((dir_ / "missing" / "out.txt").string(), "x\n"),
      std::runtime_error);
}

TEST_F(AtomicFileTest, AppendFileAppendsRecords) {
  {
    AppendFile journal(path("journal.txt"));
    ASSERT_TRUE(journal.is_open());
    journal.append("header\n");
    journal.append("record 1\n");
  }
  {
    // Reopening appends after the existing records, never truncates.
    AppendFile journal(path("journal.txt"));
    journal.append("record 2\n");
  }
  EXPECT_EQ(slurp(path("journal.txt")), "header\nrecord 1\nrecord 2\n");
}

TEST_F(AtomicFileTest, AppendFileMoveTransfersOwnership) {
  AppendFile a(path("journal.txt"));
  AppendFile b(std::move(a));
  EXPECT_FALSE(a.is_open());  // NOLINT(bugprone-use-after-move): moved-from probe
  EXPECT_TRUE(b.is_open());
  b.append("via b\n");
  b.close();
  EXPECT_FALSE(b.is_open());
  EXPECT_EQ(slurp(path("journal.txt")), "via b\n");
}

TEST_F(AtomicFileTest, EnsureDirectoryCreatesNestedPath) {
  const std::string nested = (dir_ / "a" / "b" / "c").string();
  ensure_directory(nested);
  EXPECT_TRUE(fs::is_directory(nested));
  ensure_directory(nested);  // idempotent
}

}  // namespace
}  // namespace eadvfs::util
