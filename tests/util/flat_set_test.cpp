/// util::FlatSet — the sorted-vector set the engine uses for the
/// already-missed job-id set (small, iteration-heavy, insert-rare).

#include <gtest/gtest.h>

#include <vector>

#include "util/flat_set.hpp"

namespace eadvfs {
namespace {

TEST(FlatSet, StartsEmpty) {
  util::FlatSet<int> s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_FALSE(s.contains(3));
}

TEST(FlatSet, InsertDeduplicatesAndSorts) {
  util::FlatSet<int> s;
  EXPECT_TRUE(s.insert(5));
  EXPECT_TRUE(s.insert(1));
  EXPECT_TRUE(s.insert(9));
  EXPECT_FALSE(s.insert(5));  // duplicate: rejected, size unchanged.
  EXPECT_EQ(s.size(), 3u);
  const std::vector<int> got(s.begin(), s.end());
  EXPECT_EQ(got, (std::vector<int>{1, 5, 9}));
}

TEST(FlatSet, ContainsAndErase) {
  util::FlatSet<int> s;
  for (int v : {4, 2, 8}) s.insert(v);
  EXPECT_TRUE(s.contains(2));
  EXPECT_FALSE(s.contains(3));
  EXPECT_TRUE(s.erase(2));
  EXPECT_FALSE(s.contains(2));
  EXPECT_FALSE(s.erase(2));  // already gone.
  EXPECT_EQ(s.size(), 2u);
}

TEST(FlatSet, ClearAndReserve) {
  util::FlatSet<int> s;
  s.reserve(16);
  for (int v = 0; v < 10; ++v) s.insert(v);
  EXPECT_EQ(s.size(), 10u);
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.insert(7));
}

}  // namespace
}  // namespace eadvfs
