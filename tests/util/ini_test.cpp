#include "util/ini.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace eadvfs::util {
namespace {

const char* kSample = R"(
# scenario for the bench node
[simulation]
horizon = 5000
seed = 7          ; inline comment

[energy]
source = solar
capacity = 120.5
leak = 0.05

[scheduler]
scheduler = ea-dvfs
verbose = true
)";

TEST(IniFile, ParsesSectionsAndKeys) {
  const IniFile ini = IniFile::parse(kSample);
  EXPECT_TRUE(ini.has("simulation", "horizon"));
  EXPECT_TRUE(ini.has("energy", "capacity"));
  EXPECT_FALSE(ini.has("energy", "horizon"));
  EXPECT_FALSE(ini.has("nope", "x"));
}

TEST(IniFile, TypedGetters) {
  const IniFile ini = IniFile::parse(kSample);
  EXPECT_EQ(ini.get_integer("simulation", "seed", 0), 7);
  EXPECT_DOUBLE_EQ(ini.get_real("energy", "capacity", 0.0), 120.5);
  EXPECT_EQ(ini.get_string("scheduler", "scheduler", ""), "ea-dvfs");
  EXPECT_TRUE(ini.get_bool("scheduler", "verbose", false));
}

TEST(IniFile, FallbacksWhenAbsent) {
  const IniFile ini = IniFile::parse(kSample);
  EXPECT_EQ(ini.get_integer("simulation", "missing", 42), 42);
  EXPECT_DOUBLE_EQ(ini.get_real("missing", "missing", 1.5), 1.5);
  EXPECT_EQ(ini.get_string("x", "y", "dflt"), "dflt");
  EXPECT_FALSE(ini.get_bool("x", "y", false));
}

TEST(IniFile, CommentsAndWhitespaceIgnored) {
  const IniFile ini = IniFile::parse("  [s]  \n  a =  1 2 3  # c\n; whole line\n");
  EXPECT_EQ(ini.get_string("s", "a", ""), "1 2 3");
}

TEST(IniFile, KeysBeforeAnySectionLandInBlank) {
  const IniFile ini = IniFile::parse("top = 1\n[s]\nx = 2\n");
  EXPECT_EQ(ini.get_integer("", "top", 0), 1);
}

TEST(IniFile, LaterKeysOverrideEarlier) {
  const IniFile ini = IniFile::parse("[s]\na = 1\na = 2\n");
  EXPECT_EQ(ini.get_integer("s", "a", 0), 2);
  EXPECT_EQ(ini.keys("s").size(), 1u);
}

TEST(IniFile, SectionAndKeyOrderPreserved) {
  const IniFile ini = IniFile::parse("[b]\nz=1\ny=2\n[a]\nx=3\n");
  const auto sections = ini.sections();
  ASSERT_EQ(sections.size(), 2u);
  EXPECT_EQ(sections[0], "b");
  EXPECT_EQ(sections[1], "a");
  const auto keys = ini.keys("b");
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "z");
  EXPECT_EQ(keys[1], "y");
}

TEST(IniFile, MalformedInputThrowsWithLineNumber) {
  try {
    (void)IniFile::parse("[s]\nno equals sign here\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  EXPECT_THROW((void)IniFile::parse("[unterminated\n"), std::runtime_error);
  EXPECT_THROW((void)IniFile::parse("[s]\n= value\n"), std::runtime_error);
}

TEST(IniFile, BadTypedValuesThrow) {
  const IniFile ini = IniFile::parse("[s]\nnum = 12abc\nflag = maybe\n");
  EXPECT_THROW((void)ini.get_integer("s", "num", 0), std::invalid_argument);
  EXPECT_THROW((void)ini.get_real("s", "num", 0.0), std::invalid_argument);
  EXPECT_THROW((void)ini.get_bool("s", "flag", false), std::invalid_argument);
}

TEST(IniFile, BoolSpellings) {
  const IniFile ini =
      IniFile::parse("[s]\na=TRUE\nb=no\nc=1\nd=off\ne=Yes\nf=0\n");
  EXPECT_TRUE(ini.get_bool("s", "a", false));
  EXPECT_FALSE(ini.get_bool("s", "b", true));
  EXPECT_TRUE(ini.get_bool("s", "c", false));
  EXPECT_FALSE(ini.get_bool("s", "d", true));
  EXPECT_TRUE(ini.get_bool("s", "e", false));
  EXPECT_FALSE(ini.get_bool("s", "f", true));
}

TEST(IniFile, LoadFromDisk) {
  const std::string path = ::testing::TempDir() + "/eadvfs_scn.ini";
  {
    std::ofstream f(path);
    f << "[energy]\ncapacity = 75\n";
  }
  const IniFile ini = IniFile::load(path);
  EXPECT_DOUBLE_EQ(ini.get_real("energy", "capacity", 0.0), 75.0);
  std::remove(path.c_str());
}

TEST(IniFile, LoadMissingFileThrows) {
  EXPECT_THROW((void)IniFile::load("/definitely/not/here.ini"),
               std::runtime_error);
}

TEST(IniFile, EmptyInputIsEmptyFile) {
  const IniFile ini = IniFile::parse("");
  EXPECT_TRUE(ini.sections().empty());
}

}  // namespace
}  // namespace eadvfs::util
