#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace eadvfs::util {
namespace {

TEST(RunningStats, EmptyAccumulator) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stderr_mean(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations is 32.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStats, MinMaxTracking) {
  RunningStats s;
  for (double x : {3.0, -1.0, 7.0, 0.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
}

TEST(RunningStats, SumMatchesMeanTimesCount) {
  RunningStats s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.sum(), 5050.0, 1e-9);
}

TEST(RunningStats, MergeMatchesCombinedStream) {
  RunningStats separate_a, separate_b, combined;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.37 * i - 3.0;
    separate_a.add(x);
    combined.add(x);
  }
  for (int i = 0; i < 77; ++i) {
    const double x = -0.11 * i + 8.0;
    separate_b.add(x);
    combined.add(x);
  }
  separate_a.merge(separate_b);
  EXPECT_EQ(separate_a.count(), combined.count());
  EXPECT_NEAR(separate_a.mean(), combined.mean(), 1e-10);
  EXPECT_NEAR(separate_a.variance(), combined.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(separate_a.min(), combined.min());
  EXPECT_DOUBLE_EQ(separate_a.max(), combined.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  RunningStats a_copy = a;
  a.merge(b);  // empty rhs: no change
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a_copy);  // empty lhs: adopt rhs
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, MergeIsAssociativeAndOrderIndependent) {
  // Property behind the fleet runner's determinism contract: shards are
  // merged in shard-index order, but the *statistics* must not depend on how
  // the sample stream was partitioned or in which order partitions are
  // folded — within floating-point tolerance scaled to the magnitudes
  // involved.  (Bytewise identity of fleet artifacts comes from the fixed
  // fold order, not from exact fp associativity.)
  Xoshiro256ss rng(20260809);
  std::vector<double> samples(513);
  for (double& x : samples) x = rng.normal(5.0, 3.0);

  RunningStats whole;
  for (double x : samples) whole.add(x);

  // Partition into shards of varying sizes, accumulate each independently.
  const std::vector<std::size_t> cuts = {0, 7, 64, 65, 200, 512, 513};
  std::vector<RunningStats> shards;
  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
    RunningStats s;
    for (std::size_t j = cuts[i]; j < cuts[i + 1]; ++j) s.add(samples[j]);
    shards.push_back(s);
  }

  const double mean_tol = 64.0 * std::abs(whole.mean()) *
                          std::numeric_limits<double>::epsilon();
  const double m2_tol = 1024.0 * whole.sum_squared_deviations() *
                        std::numeric_limits<double>::epsilon();

  // Left fold, right fold, and a shuffled fold must all agree.
  const std::vector<std::vector<std::size_t>> orders = {
      {0, 1, 2, 3, 4, 5}, {5, 4, 3, 2, 1, 0}, {3, 0, 5, 1, 4, 2}};
  for (const auto& order : orders) {
    RunningStats folded;
    for (std::size_t index : order) folded.merge(shards[index]);
    EXPECT_EQ(folded.count(), whole.count());
    EXPECT_NEAR(folded.mean(), whole.mean(), mean_tol);
    EXPECT_NEAR(folded.sum_squared_deviations(),
                whole.sum_squared_deviations(), m2_tol);
    EXPECT_DOUBLE_EQ(folded.min(), whole.min());
    EXPECT_DOUBLE_EQ(folded.max(), whole.max());
  }

  // Associativity: (a + b) + c == a + (b + c), same tolerances.
  RunningStats left = shards[0];
  left.merge(shards[1]);
  left.merge(shards[2]);
  RunningStats bc = shards[1];
  bc.merge(shards[2]);
  RunningStats right = shards[0];
  right.merge(bc);
  EXPECT_EQ(left.count(), right.count());
  EXPECT_NEAR(left.mean(), right.mean(), mean_tol);
  EXPECT_NEAR(left.sum_squared_deviations(), right.sum_squared_deviations(),
              m2_tol);
}

TEST(RunningStats, FromMomentsRoundTripsAccumulatorState) {
  RunningStats original;
  for (double x : {1.5, -2.0, 7.25, 0.0, 3.125}) original.add(x);
  const RunningStats rebuilt = RunningStats::from_moments(
      original.count(), original.mean(), original.sum_squared_deviations(),
      original.min(), original.max());
  EXPECT_EQ(rebuilt.count(), original.count());
  EXPECT_DOUBLE_EQ(rebuilt.mean(), original.mean());
  EXPECT_DOUBLE_EQ(rebuilt.variance(), original.variance());
  EXPECT_DOUBLE_EQ(rebuilt.min(), original.min());
  EXPECT_DOUBLE_EQ(rebuilt.max(), original.max());
  // And merging a rebuilt accumulator behaves like merging the original.
  RunningStats a, b;
  a.add(10.0);
  b.add(10.0);
  a.merge(original);
  b.merge(rebuilt);
  EXPECT_DOUBLE_EQ(a.mean(), b.mean());
  EXPECT_DOUBLE_EQ(a.variance(), b.variance());
}

TEST(RunningStats, NanPropagatesIntoMomentsByDesign) {
  // Documents (rather than papers over) the current contract: RunningStats
  // does no NaN screening — a NaN observation poisons mean/variance and, via
  // the comparison-based min/max updates, is *dropped* from min/max (NaN
  // comparisons are false, so std::min/std::max keep the old value).
  // Callers that must keep NaN out of aggregates screen at the edge, as
  // Histogram::add now does with its side counter.
  RunningStats s;
  s.add(1.0);
  s.add(std::numeric_limits<double>::quiet_NaN());
  s.add(2.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_TRUE(std::isnan(s.mean()));
  EXPECT_TRUE(std::isnan(s.variance()));
  // NaN never wins a std::min/std::max comparison, so min/max skip it and
  // keep tracking the finite observations.
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 2.0);
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
  RunningStats small, large;
  for (int i = 0; i < 10; ++i) small.add(i % 5);
  for (int i = 0; i < 1000; ++i) large.add(i % 5);
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(RunningStats, NumericallyStableForLargeOffsets) {
  // Naive sum-of-squares would lose catastrophically here.
  RunningStats s;
  const double offset = 1e9;
  for (double x : {offset + 1.0, offset + 2.0, offset + 3.0}) s.add(x);
  EXPECT_NEAR(s.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(CurveAccumulator, PointwiseMeans) {
  CurveAccumulator acc(3);
  acc.add(0, 1.0);
  acc.add(0, 3.0);
  acc.add(1, 10.0);
  acc.add(2, -1.0);
  acc.add(2, 1.0);
  EXPECT_DOUBLE_EQ(acc.mean(0), 2.0);
  EXPECT_DOUBLE_EQ(acc.mean(1), 10.0);
  EXPECT_DOUBLE_EQ(acc.mean(2), 0.0);
  EXPECT_EQ(acc.size(), 3u);
}

TEST(CurveAccumulator, OutOfRangeThrows) {
  CurveAccumulator acc(2);
  EXPECT_THROW(acc.add(2, 1.0), std::out_of_range);
  EXPECT_THROW((void)acc.mean(5), std::out_of_range);
}

TEST(Quantile, MedianOfOddSet) {
  EXPECT_DOUBLE_EQ(quantile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(Quantile, InterpolatesBetweenOrderStatistics) {
  // Sorted {1,2,3,4}: q=0.5 -> 2.5.
  EXPECT_DOUBLE_EQ(quantile({4.0, 1.0, 3.0, 2.0}, 0.5), 2.5);
}

TEST(Quantile, ExtremesReturnMinMax) {
  std::vector<double> v{5.0, -2.0, 9.0, 0.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), -2.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 9.0);
}

TEST(Quantile, SingleElement) {
  EXPECT_DOUBLE_EQ(quantile({7.0}, 0.25), 7.0);
}

TEST(Quantile, RejectsBadInput) {
  EXPECT_THROW((void)quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)quantile({1.0}, -0.1), std::invalid_argument);
  EXPECT_THROW((void)quantile({1.0}, 1.1), std::invalid_argument);
}

}  // namespace
}  // namespace eadvfs::util
