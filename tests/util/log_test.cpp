#include "util/log.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace eadvfs::util {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(LogLevel, SetAndGetRoundTrip) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST(ParseLogLevel, AcceptsAllNames) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("none"), LogLevel::kOff);
}

TEST(ParseLogLevel, RejectsUnknown) {
  EXPECT_THROW((void)parse_log_level("loud"), std::invalid_argument);
}

TEST(LogLine, SuppressedBelowThresholdDoesNotCrash) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  // Just exercise the stream path with the sink disabled.
  EADVFS_LOG_DEBUG << "value=" << 42 << " text";
  EADVFS_LOG_ERROR << "also suppressed at kOff";
  SUCCEED();
}

TEST(LogLine, EmittedAboveThresholdDoesNotCrash) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  EADVFS_LOG_INFO << "hello " << 1.5;
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("hello 1.5"), std::string::npos);
  EXPECT_NE(err.find("INFO"), std::string::npos);
}

}  // namespace
}  // namespace eadvfs::util
