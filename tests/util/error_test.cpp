#include "util/error.hpp"

#include <gtest/gtest.h>

#include <string>

namespace eadvfs::util {
namespace {

TEST(ExitCodes, AreDistinctAndDocumentedValues) {
  EXPECT_EQ(exit_code::kSuccess, 0);
  EXPECT_EQ(exit_code::kFailure, 1);
  EXPECT_EQ(exit_code::kUsage, 2);
  EXPECT_EQ(exit_code::kPartialResults, 4);
  EXPECT_EQ(exit_code::kManifestMismatch, 5);
  EXPECT_EQ(exit_code::kInterrupted, 6);
  EXPECT_EQ(exit_code::kWatchdogTimeout, 7);
}

TEST(DescribeFailures, ListsEveryFailureWithAttempts) {
  const std::string text = describe_failures({
      {3, 1, "boom"},
      {11, 4, "kaput"},
  });
  EXPECT_NE(text.find("2 replications failed"), std::string::npos);
  EXPECT_NE(text.find("replication 3"), std::string::npos);
  EXPECT_NE(text.find("boom"), std::string::npos);
  EXPECT_NE(text.find("replication 11"), std::string::npos);
  EXPECT_NE(text.find("4 attempts"), std::string::npos);
  EXPECT_NE(text.find("kaput"), std::string::npos);
}

TEST(CompositeRunError, SortsFailuresByIndex) {
  const CompositeRunError error({{9, 1, "late"}, {2, 2, "early"}, {5, 1, "mid"}});
  ASSERT_EQ(error.failures().size(), 3u);
  EXPECT_EQ(error.failures()[0].index, 2u);
  EXPECT_EQ(error.failures()[1].index, 5u);
  EXPECT_EQ(error.failures()[2].index, 9u);
}

TEST(CompositeRunError, MessageNamesLowestIndexFirst) {
  const CompositeRunError error({{7, 1, "second"}, {1, 1, "first"}});
  const std::string what = error.what();
  const auto first_pos = what.find("replication 1");
  const auto second_pos = what.find("replication 7");
  ASSERT_NE(first_pos, std::string::npos);
  ASSERT_NE(second_pos, std::string::npos);
  EXPECT_LT(first_pos, second_pos);
}

TEST(CompositeRunError, IsACatchableRuntimeError) {
  try {
    throw CompositeRunError({{0, 1, "x"}});
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("failed"), std::string::npos);
  }
}

TEST(ManifestMismatchError, CarriesItsMessage) {
  const ManifestMismatchError error("seed differs");
  EXPECT_STREQ(error.what(), "seed differs");
}

}  // namespace
}  // namespace eadvfs::util
