#include "util/math.hpp"

#include <gtest/gtest.h>

namespace eadvfs::util {
namespace {

TEST(ApproxEqual, WithinEpsilon) {
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 0.5e-9));
  EXPECT_TRUE(approx_equal(1.0, 1.0 - 0.5e-9));
  EXPECT_FALSE(approx_equal(1.0, 1.0 + 1e-6));
}

TEST(ApproxEqual, CustomEpsilon) {
  EXPECT_TRUE(approx_equal(1.0, 1.4, 0.5));
  EXPECT_FALSE(approx_equal(1.0, 1.6, 0.5));
}

TEST(DefinitelyLess, RespectsTolerance) {
  EXPECT_TRUE(definitely_less(1.0, 2.0));
  EXPECT_FALSE(definitely_less(1.0, 1.0 + 0.5e-9));
  EXPECT_FALSE(definitely_less(2.0, 1.0));
}

TEST(DefinitelyGreater, RespectsTolerance) {
  EXPECT_TRUE(definitely_greater(2.0, 1.0));
  EXPECT_FALSE(definitely_greater(1.0 + 0.5e-9, 1.0));
  EXPECT_FALSE(definitely_greater(1.0, 2.0));
}

TEST(Clamp, InsideAndOutside) {
  EXPECT_DOUBLE_EQ(clamp(0.5, 0.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(clamp(-0.5, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(clamp(1.5, 0.0, 1.0), 1.0);
}

TEST(SnapNonnegative, SnapsDustOnly) {
  EXPECT_DOUBLE_EQ(snap_nonnegative(-0.5e-9), 0.0);
  EXPECT_DOUBLE_EQ(snap_nonnegative(0.25), 0.25);
  // More negative than epsilon is preserved so invariant checks still fire.
  EXPECT_DOUBLE_EQ(snap_nonnegative(-1.0), -1.0);
}

TEST(SnapNonnegative, CustomEpsilon) {
  EXPECT_DOUBLE_EQ(snap_nonnegative(-0.5, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(snap_nonnegative(-1.5, 1.0), -1.5);
}

}  // namespace
}  // namespace eadvfs::util
