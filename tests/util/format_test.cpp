/// util::format_double / util::json_escape — the formatting layer behind the
/// observability determinism contract (docs/OBSERVABILITY.md): shortest
/// round-trip decimals, locale-independent, with strict JSON escaping.

#include "util/format.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

namespace eadvfs::util {
namespace {

TEST(FormatDouble, IntegersHaveNoFraction) {
  EXPECT_EQ(format_double(0.0), "0");
  EXPECT_EQ(format_double(1.0), "1");
  EXPECT_EQ(format_double(-42.0), "-42");
  EXPECT_EQ(format_double(1000.0), "1000");
}

TEST(FormatDouble, ShortestRepresentationRoundTrips) {
  for (const double value :
       {0.1, 0.5, 1.5, 3.141592653589793, 1e-9, 1e17, -2.75, 19.0625}) {
    const std::string s = format_double(value);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), value) << s;
  }
}

TEST(FormatDouble, UsesDotRegardlessOfLocale) {
  // The artifact contract forbids locale-dependent separators.
  EXPECT_EQ(format_double(0.5), "0.5");
  EXPECT_EQ(format_double(1234.25), "1234.25");
}

TEST(FormatDouble, NonFiniteValuesAreNamed) {
  EXPECT_EQ(format_double(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(format_double(-std::numeric_limits<double>::infinity()), "-inf");
  EXPECT_EQ(format_double(std::nan("")), "nan");
}

TEST(FormatDouble, DistinctDoublesFormatDistinctly) {
  // Shortest-round-trip means adjacent representable values never collide.
  const double a = 0.1;
  const double b = std::nextafter(a, 1.0);
  EXPECT_NE(format_double(a), format_double(b));
}

TEST(JsonEscape, PassesPlainStringsThrough) {
  EXPECT_EQ(json_escape("EA-DVFS"), "EA-DVFS");
  EXPECT_EQ(json_escape(""), "");
  EXPECT_EQ(json_escape("stretch-min-feasible"), "stretch-min-feasible");
}

TEST(JsonEscape, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
}

TEST(JsonEscape, EscapesControlCharacters) {
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape("a\tb"), "a\\tb");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

}  // namespace
}  // namespace eadvfs::util
