#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace eadvfs::util {
namespace {

TEST(CsvQuote, PlainCellUnchanged) {
  EXPECT_EQ(csv_quote("hello"), "hello");
}

TEST(CsvQuote, CommaTriggersQuoting) {
  EXPECT_EQ(csv_quote("a,b"), "\"a,b\"");
}

TEST(CsvQuote, EmbeddedQuotesAreDoubled) {
  EXPECT_EQ(csv_quote("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvQuote, NewlineTriggersQuoting) {
  EXPECT_EQ(csv_quote("a\nb"), "\"a\nb\"");
}

TEST(CsvWriter, WritesRowsWithCommas) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write_row({std::string("a"), std::string("b,c"), std::string("d")});
  EXPECT_EQ(out.str(), "a,\"b,c\",d\n");
}

TEST(CsvWriter, NumericRowPrecision) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write_row(std::vector<double>{1.5, 2.25}, 4);
  EXPECT_EQ(out.str(), "1.5,2.25\n");
}

TEST(CsvWriter, CellByCellComposition) {
  std::ostringstream out;
  CsvWriter w(out);
  w.cell("x").cell(3.0, 3).cell(static_cast<long long>(-7));
  w.end_row();
  EXPECT_EQ(out.str(), "x,3,-7\n");
}

TEST(CsvSplit, BasicSplit) {
  const auto cells = csv_split("a,b,c");
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0], "a");
  EXPECT_EQ(cells[2], "c");
}

TEST(CsvSplit, QuotedCommaStaysInCell) {
  const auto cells = csv_split("a,\"b,c\",d");
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[1], "b,c");
}

TEST(CsvSplit, EscapedQuotes) {
  const auto cells = csv_split("\"say \"\"hi\"\"\"");
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0], "say \"hi\"");
}

TEST(CsvSplit, EmptyCells) {
  const auto cells = csv_split("a,,c,");
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[1], "");
  EXPECT_EQ(cells[3], "");
}

TEST(CsvSplit, ToleratesCarriageReturn) {
  const auto cells = csv_split("a,b\r");
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[1], "b");
}

TEST(CsvRoundTrip, WriteThenReadFile) {
  const std::string path = ::testing::TempDir() + "/eadvfs_csv_test.csv";
  {
    std::ofstream file(path);
    CsvWriter w(file);
    w.write_row({std::string("time"), std::string("power")});
    w.write_row(std::vector<double>{0.0, 1.5});
    w.write_row(std::vector<double>{1.0, 2.5});
  }
  const auto rows = csv_read_file(path);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][1], "power");
  EXPECT_EQ(rows[2][0], "1");
  std::remove(path.c_str());
}

TEST(CsvReadFile, MissingFileThrows) {
  EXPECT_THROW((void)csv_read_file("/nonexistent/definitely/not/here.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace eadvfs::util
