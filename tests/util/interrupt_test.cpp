#include "util/interrupt.hpp"

#include <gtest/gtest.h>

#include <csignal>

namespace eadvfs::util {
namespace {

// The flag is process-global, so every test restores it on the way out.
class InterruptTest : public ::testing::Test {
 protected:
  void SetUp() override { reset_interrupt_flag(); }
  void TearDown() override { reset_interrupt_flag(); }
};

TEST_F(InterruptTest, FlagStartsClear) {
  EXPECT_FALSE(interrupt_requested());
  ASSERT_NE(interrupt_flag(), nullptr);
  EXPECT_FALSE(interrupt_flag()->load());
}

TEST_F(InterruptTest, RequestInterruptSetsTheSharedFlag) {
  request_interrupt();
  EXPECT_TRUE(interrupt_requested());
  EXPECT_TRUE(interrupt_flag()->load());
  reset_interrupt_flag();
  EXPECT_FALSE(interrupt_requested());
}

TEST_F(InterruptTest, SigintSetsFlagWithoutKillingTheProcess) {
  install_interrupt_handlers();
  ASSERT_EQ(std::raise(SIGINT), 0);
  EXPECT_TRUE(interrupt_requested());
  // The handler re-arms to SIG_DFL for the *second* signal; re-install so
  // later tests (and the next raise below) stay cooperative.
  reset_interrupt_flag();
  install_interrupt_handlers();
  ASSERT_EQ(std::raise(SIGTERM), 0);
  EXPECT_TRUE(interrupt_requested());
  install_interrupt_handlers();
}

}  // namespace
}  // namespace eadvfs::util
