#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace eadvfs::util {
namespace {

TEST(SplitMix64, IsDeterministicForSameSeed) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() != b.next()) ++differing;
  EXPECT_GE(differing, 60);
}

TEST(SplitMix64, KnownReferenceValues) {
  // Reference values for seed 0 from the public-domain splitmix64.c.
  SplitMix64 g(0);
  EXPECT_EQ(g.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(g.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(g.next(), 0x06c45d188009454fULL);
}

TEST(Xoshiro256ss, DeterministicForSameSeed) {
  Xoshiro256ss a(42);
  Xoshiro256ss b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256ss, Uniform01StaysInRange) {
  Xoshiro256ss g(7);
  for (int i = 0; i < 100'000; ++i) {
    const double u = g.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256ss, Uniform01MeanIsHalf) {
  Xoshiro256ss g(11);
  double sum = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += g.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Xoshiro256ss, UniformRespectsBounds) {
  Xoshiro256ss g(3);
  for (int i = 0; i < 10'000; ++i) {
    const double u = g.uniform(-3.0, 5.5);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.5);
  }
}

TEST(Xoshiro256ss, UniformIntCoversFullRangeInclusive) {
  Xoshiro256ss g(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10'000; ++i) seen.insert(g.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 9u);
}

TEST(Xoshiro256ss, UniformIntIsRoughlyUnbiased) {
  Xoshiro256ss g(13);
  std::vector<int> counts(10, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++counts[g.uniform_int(0, 9)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 10 * 0.1);
}

TEST(Xoshiro256ss, UniformIntSingletonRange) {
  Xoshiro256ss g(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(g.uniform_int(7, 7), 7u);
}

TEST(Xoshiro256ss, NormalMomentsMatchStandardNormal) {
  Xoshiro256ss g(17);
  const int n = 200'000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = g.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(Xoshiro256ss, NormalAbsMeanMatchesHalfNormal) {
  // E|N| = sqrt(2/pi) — this is the constant behind the eq. 13 mean power.
  Xoshiro256ss g(19);
  const int n = 200'000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += std::abs(g.normal());
  EXPECT_NEAR(sum / n, std::sqrt(2.0 / 3.14159265358979), 0.01);
}

TEST(Xoshiro256ss, ScaledNormalHasRequestedMoments) {
  Xoshiro256ss g(23);
  const int n = 100'000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = g.normal(10.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Xoshiro256ss, JumpProducesNonOverlappingStream) {
  Xoshiro256ss a(31);
  Xoshiro256ss b(31);
  b.jump();
  // The jumped stream must not coincide with the original's first outputs.
  std::set<std::uint64_t> head;
  for (int i = 0; i < 1000; ++i) head.insert(a.next());
  int collisions = 0;
  for (int i = 0; i < 1000; ++i)
    if (head.count(b.next()) != 0) ++collisions;
  EXPECT_LE(collisions, 1);
}

}  // namespace
}  // namespace eadvfs::util
