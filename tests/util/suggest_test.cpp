/// util::edit_distance / util::closest_match — the did-you-mean hints every
/// front door (CLI flags, scheduler factory, predictor names) shares.

#include "util/suggest.hpp"

#include <gtest/gtest.h>

namespace eadvfs::util {
namespace {

TEST(EditDistance, BaseCases) {
  EXPECT_EQ(edit_distance("", ""), 0u);
  EXPECT_EQ(edit_distance("abc", ""), 3u);
  EXPECT_EQ(edit_distance("", "abc"), 3u);
  EXPECT_EQ(edit_distance("lsa", "lsa"), 0u);
}

TEST(EditDistance, CountsSubstitutionsInsertionsDeletions) {
  EXPECT_EQ(edit_distance("lsa", "lso"), 1u);       // substitution
  EXPECT_EQ(edit_distance("edf", "edfs"), 1u);      // insertion
  EXPECT_EQ(edit_distance("ea-dvfs", "eadvfs"), 1u);  // deletion
  EXPECT_EQ(edit_distance("kitten", "sitting"), 3u);  // classic
}

TEST(ClosestMatch, FindsNearMiss) {
  const std::vector<std::string> names = {"edf", "lsa", "ea-dvfs",
                                          "greedy-dvfs"};
  EXPECT_EQ(closest_match("ea-dvf", names), "ea-dvfs");
  EXPECT_EQ(closest_match("lso", names), "lsa");
  EXPECT_EQ(closest_match("edfs", names), "edf");
}

TEST(ClosestMatch, RejectsDistantNames) {
  const std::vector<std::string> names = {"edf", "lsa", "ea-dvfs"};
  EXPECT_EQ(closest_match("warp-speed", names), "");
  EXPECT_EQ(closest_match("rate-monotonic", names), "");
}

TEST(ClosestMatch, ShortTyposMustBeStrictlyCloserThanLength) {
  // Distance must be < the query length: "x" vs "rm" (distance 2) is a total
  // rewrite, not a typo.
  const std::vector<std::string> names = {"rm"};
  EXPECT_EQ(closest_match("x", names), "");
}

TEST(ClosestMatch, TiesResolveToEarliestCandidate) {
  const std::vector<std::string> names = {"aa", "ab"};
  EXPECT_EQ(closest_match("ac", names), "aa");
}

TEST(ClosestMatch, EmptyInputs) {
  EXPECT_EQ(closest_match("anything", {}), "");
  EXPECT_EQ(closest_match("", {"edf"}), "");
}

}  // namespace
}  // namespace eadvfs::util
