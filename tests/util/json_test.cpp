#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace eadvfs::util {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(json_parse("null").is_null());
  EXPECT_TRUE(json_parse("true").as_bool());
  EXPECT_FALSE(json_parse("false").as_bool());
  EXPECT_DOUBLE_EQ(json_parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(json_parse("-3.5e2").as_number(), -350.0);
  EXPECT_EQ(json_parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedContainers) {
  const JsonValue doc = json_parse(
      R"({"name": "fleet", "devices": 1000,
          "ranges": {"u": [0.2, 0.8]}, "tags": []})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("name")->as_string(), "fleet");
  EXPECT_DOUBLE_EQ(doc.find("devices")->as_number(), 1000.0);
  const JsonValue* u = doc.find("ranges")->find("u");
  ASSERT_NE(u, nullptr);
  ASSERT_EQ(u->as_array().size(), 2u);
  EXPECT_DOUBLE_EQ(u->as_array()[0].as_number(), 0.2);
  EXPECT_TRUE(doc.find("tags")->as_array().empty());
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(Json, ObjectMembersKeepSourceOrder) {
  const JsonValue doc = json_parse(R"({"z": 1, "a": 2, "m": 3})");
  const auto& members = doc.as_object();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "m");
}

TEST(Json, StringEscapes) {
  EXPECT_EQ(json_parse(R"("a\"b\\c\nd\te")").as_string(), "a\"b\\c\nd\te");
  EXPECT_EQ(json_parse(R"("Aé")").as_string(), "A\xc3\xa9");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW((void)json_parse(""), std::invalid_argument);
  EXPECT_THROW((void)json_parse("{"), std::invalid_argument);
  EXPECT_THROW((void)json_parse("[1, ]"), std::invalid_argument);
  EXPECT_THROW((void)json_parse("{'single': 1}"), std::invalid_argument);
  EXPECT_THROW((void)json_parse("tru"), std::invalid_argument);
  EXPECT_THROW((void)json_parse("1 2"), std::invalid_argument);
  EXPECT_THROW((void)json_parse("0."), std::invalid_argument);
  EXPECT_THROW((void)json_parse("1e"), std::invalid_argument);
  EXPECT_THROW((void)json_parse("\"unterminated"), std::invalid_argument);
  EXPECT_THROW((void)json_parse("{\"a\": 1, \"a\": 2}"), std::invalid_argument);
}

TEST(Json, ErrorsCarryLineAndColumn) {
  try {
    (void)json_parse("{\n  \"a\": 1,\n  oops\n}");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
  }
}

TEST(Json, TypeMismatchAccessorsNameBothTypes) {
  const JsonValue doc = json_parse("[1]");
  try {
    (void)doc.as_object();
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("expected object"), std::string::npos) << what;
    EXPECT_NE(what.find("found array"), std::string::npos) << what;
  }
}

TEST(Json, ParseFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/json_test_spec.json";
  {
    std::ofstream out(path);
    out << R"({"devices": 64, "seed": 7})";
  }
  const JsonValue doc = json_parse_file(path);
  EXPECT_DOUBLE_EQ(doc.find("devices")->as_number(), 64.0);
  std::remove(path.c_str());
  EXPECT_THROW((void)json_parse_file(path), std::runtime_error);
}

}  // namespace
}  // namespace eadvfs::util
