/// obs decision-trace formatting and the RunObservability sink: CSV cell
/// semantics (kHuge and not-computed fields as empty cells), observer
/// collection, and the multi-run accumulation behind a bench sweep's trace
/// replication.  Column semantics: docs/OBSERVABILITY.md.

#include "obs/decision_trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/export.hpp"

namespace eadvfs::obs {
namespace {

sim::DecisionRecord sample_run_record() {
  sim::DecisionRecord r;
  r.index = 3;
  r.time = 5.0;
  r.job = 1;
  r.task_id = 1;
  r.deadline = 21.0;
  r.remaining = 1.5;
  r.stored = 13.5;
  r.predicted = 8.0;
  r.used_prediction = true;
  r.has_min_feasible = true;
  r.min_feasible_op = 0;
  r.s1 = 5.0;
  r.s2 = 19.0;
  r.run = true;
  r.chosen_op = 0;
  r.start = 5.0;
  r.recheck_at = 19.0;
  r.rule = "stretch-min-feasible";
  return r;
}

TEST(DecisionCsv, HeaderMatchesDocumentedSchema) {
  EXPECT_EQ(decision_csv_header(),
            "scheduler,capacity,index,time,job,task,deadline,remaining,stored,"
            "predicted,min_feasible_op,s1,s2,decision,chosen_op,start,"
            "recheck_at,rule");
}

TEST(DecisionCsv, RunRowCarriesEveryComputedField) {
  EXPECT_EQ(decision_csv_row("ea-dvfs", 50.0, sample_run_record()),
            "ea-dvfs,50,3,5,1,1,21,1.5,13.5,8,0,5,19,run,0,5,19,"
            "stretch-min-feasible");
}

TEST(DecisionCsv, NotComputedFieldsAreEmptyCells) {
  // An EDF decision: no prediction, no ineq. (6) point, no s1/s2, no
  // recheck bound — all empty cells, never sentinel numbers.
  sim::DecisionRecord r;
  r.index = 0;
  r.time = 0.0;
  r.job = 7;
  r.task_id = 2;
  r.deadline = 16.0;
  r.remaining = 4.0;
  r.stored = 24.0;
  r.run = true;
  r.chosen_op = 4;
  r.start = 0.0;
  r.rule = "edf-full-speed";
  EXPECT_EQ(decision_csv_row("edf", 100.0, r),
            "edf,100,0,0,7,2,16,4,24,,,,,run,4,0,,edf-full-speed");
}

TEST(DecisionCsv, IdleRowHasNoChosenOp) {
  sim::DecisionRecord r;
  r.index = 1;
  r.time = 2.0;
  r.job = 0;
  r.task_id = 0;
  r.deadline = 16.0;
  r.remaining = 4.0;
  r.stored = 3.0;
  r.run = false;
  r.start = 12.0;    // planned wake
  r.recheck_at = 12.0;
  r.rule = "procrastinate";
  EXPECT_EQ(decision_csv_row("lsa", 100.0, r),
            "lsa,100,1,2,0,0,16,4,3,,,,,idle,,12,12,procrastinate");
}

TEST(DecisionCsv, WriteEmitsHeaderPlusOneRowPerRecord) {
  std::ostringstream out;
  write_decision_csv(out, "ea-dvfs", 50.0,
                     {sample_run_record(), sample_run_record()});
  std::istringstream in(out.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 3u);
}

TEST(DecisionTraceObserver, CollectsRecordsInOrder) {
  DecisionTraceObserver observer;
  EXPECT_TRUE(observer.empty());
  sim::DecisionRecord a = sample_run_record();
  a.index = 0;
  sim::DecisionRecord b = sample_run_record();
  b.index = 1;
  observer.on_decision(a);
  observer.on_decision(b);
  ASSERT_EQ(observer.records().size(), 2u);
  EXPECT_EQ(observer.records()[0].index, 0u);
  EXPECT_EQ(observer.records()[1].index, 1u);
}

TEST(RunObservability, AccumulatesRunsInRecordingOrder) {
  RunObservability sink;
  sim::SimulationResult result;
  result.jobs_released = 2;
  sink.record_run("lsa", 50.0, result, {sample_run_record()});
  sink.record_run("ea-dvfs", 100.0, result, {sample_run_record()});
  ASSERT_EQ(sink.runs().size(), 2u);
  EXPECT_EQ(sink.runs()[0].scheduler, "lsa");
  EXPECT_EQ(sink.runs()[1].scheduler, "ea-dvfs");
  EXPECT_DOUBLE_EQ(sink.runs()[1].capacity, 100.0);
}

TEST(RunObservability, ExportedArtifactsAreWellFormed) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "eadvfs_obs_test";
  std::filesystem::create_directories(dir);
  const std::string metrics_path = (dir / "m.json").string();
  const std::string decisions_path = (dir / "d.csv").string();

  RunObservability sink;
  sink.registry().counter("decisions", {{"scheduler", "EA-DVFS"}}).inc(1);
  sim::SimulationResult result;
  sink.record_run("EA-DVFS", 50.0, result, {sample_run_record()});
  sink.export_metrics(metrics_path);
  sink.export_decisions(decisions_path);

  std::ifstream metrics(metrics_path);
  std::stringstream metrics_doc;
  metrics_doc << metrics.rdbuf();
  EXPECT_NE(metrics_doc.str().find("\"eadvfs.metrics.v1\""), std::string::npos);
  EXPECT_NE(metrics_doc.str().find("\"EA-DVFS\""), std::string::npos);

  std::ifstream decisions(decisions_path);
  std::string header, row;
  ASSERT_TRUE(std::getline(decisions, header));
  EXPECT_EQ(header, decision_csv_header());
  ASSERT_TRUE(std::getline(decisions, row));
  EXPECT_EQ(row.substr(0, 11), "EA-DVFS,50,");

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace eadvfs::obs
