/// obs::MetricsRegistry — find-or-create semantics, type-conflict rejection,
/// canonical (registration-order-independent) export, and the JSON/CSV
/// snapshot formats documented in docs/OBSERVABILITY.md.

#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace eadvfs::obs {
namespace {

TEST(Labels, RendersCanonically) {
  EXPECT_EQ(labels_to_string({}), "");
  EXPECT_EQ(labels_to_string({{"scheduler", "EA-DVFS"}}), "scheduler=EA-DVFS");
  // std::map keys: always alphabetical regardless of insertion order.
  EXPECT_EQ(labels_to_string({{"task", "2"}, {"scheduler", "LSA"}}),
            "scheduler=LSA,task=2");
}

TEST(MetricsRegistry, CounterFindOrCreateReturnsSameInstance) {
  MetricsRegistry registry;
  Counter& a = registry.counter("jobs_released", {{"scheduler", "LSA"}});
  a.inc();
  a.inc(2.5);
  Counter& b = registry.counter("jobs_released", {{"scheduler", "LSA"}});
  EXPECT_EQ(&a, &b);
  EXPECT_DOUBLE_EQ(b.value(), 3.5);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricsRegistry, DifferentLabelsAreDifferentSeries) {
  MetricsRegistry registry;
  registry.counter("decisions", {{"scheduler", "LSA"}}).inc();
  registry.counter("decisions", {{"scheduler", "EA-DVFS"}}).inc(5);
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_DOUBLE_EQ(
      registry.counter("decisions", {{"scheduler", "EA-DVFS"}}).value(), 5.0);
}

TEST(MetricsRegistry, GaugeIsLastWriteWins) {
  MetricsRegistry registry;
  Gauge& level = registry.gauge("storage_level");
  level.set(12.0);
  level.set(7.5);
  EXPECT_DOUBLE_EQ(registry.gauge("storage_level").value(), 7.5);
}

TEST(MetricsRegistry, TypeConflictThrows) {
  MetricsRegistry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), std::logic_error);
  EXPECT_THROW(registry.histogram("x", {}, 0, 1, 4), std::logic_error);
  // Same name under different labels is a fresh series: no conflict.
  EXPECT_NO_THROW(registry.gauge("x", {{"kind", "other"}}));
}

TEST(MetricsRegistry, HistogramLayoutFixedAtFirstRegistration) {
  MetricsRegistry registry;
  util::Histogram& h = registry.histogram("lat", {}, 0.0, 10.0, 5);
  h.add(3.0);
  // Later calls ignore lo/hi/bins and return the existing instance.
  util::Histogram& again = registry.histogram("lat", {}, -99.0, 99.0, 50);
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(again.bins(), 5u);
  EXPECT_EQ(again.total(), 1u);
}

TEST(MetricsRegistry, ExportOrderIndependentOfRegistrationOrder) {
  MetricsRegistry forward, backward;
  forward.counter("a").inc();
  forward.counter("b").inc(2);
  backward.counter("b").inc(2);
  backward.counter("a").inc();
  std::ostringstream fwd, bwd;
  forward.write_json(fwd);
  backward.write_json(bwd);
  EXPECT_EQ(fwd.str(), bwd.str());
}

TEST(MetricsRegistry, EmptyRegistryExportsEmptyArray) {
  MetricsRegistry registry;
  std::ostringstream out;
  registry.write_json(out);
  EXPECT_EQ(out.str(), "[]");
}

TEST(MetricsRegistry, JsonScalarSchema) {
  MetricsRegistry registry;
  registry.counter("jobs", {{"scheduler", "LSA"}}).inc(3);
  std::ostringstream out;
  registry.write_json(out);
  EXPECT_EQ(out.str(),
            "[\n  {\"name\": \"jobs\", \"type\": \"counter\", "
            "\"labels\": {\"scheduler\": \"LSA\"}, \"value\": 3}\n]");
}

TEST(MetricsRegistry, JsonHistogramSchema) {
  MetricsRegistry registry;
  util::Histogram& h = registry.histogram("lat", {}, 0.0, 4.0, 2);
  h.add(1.0);   // first bucket
  h.add(3.0);   // second bucket
  h.add(-1.0);  // underflow
  std::ostringstream out;
  registry.write_json(out);
  EXPECT_EQ(out.str(),
            "[\n  {\"name\": \"lat\", \"type\": \"histogram\", \"labels\": {}, "
            "\"lo\": 0, \"hi\": 4, \"underflow\": 1, \"overflow\": 0, "
            "\"total\": 3, \"buckets\": [1, 1]}\n]");
}

TEST(MetricsRegistry, CsvSnapshotListsScalarsAndBuckets) {
  MetricsRegistry registry;
  registry.counter("jobs", {{"scheduler", "LSA"}}).inc(2);
  registry.histogram("lat", {}, 0.0, 2.0, 2).add(0.5);
  std::ostringstream out;
  registry.write_csv(out);
  EXPECT_EQ(out.str(),
            "name,type,labels,field,value\n"
            "jobs,counter,\"scheduler=LSA\",value,2\n"
            "lat,histogram,\"\",underflow,0\n"
            "lat,histogram,\"\",bucket:0:1,1\n"
            "lat,histogram,\"\",bucket:1:2,0\n"
            "lat,histogram,\"\",overflow,0\n");
}

TEST(MetricsRegistry, IndentPrefixesEveryLine) {
  MetricsRegistry registry;
  registry.gauge("g").set(1.0);
  std::ostringstream out;
  registry.write_json(out, 4);
  EXPECT_EQ(out.str(),
            "[\n      {\"name\": \"g\", \"type\": \"gauge\", \"labels\": {}, "
            "\"value\": 1}\n    ]");
}

}  // namespace
}  // namespace eadvfs::obs
