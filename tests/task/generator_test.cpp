#include "task/generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

namespace eadvfs::task {
namespace {

GeneratorConfig config(double u = 0.4, std::size_t n = 5) {
  GeneratorConfig cfg;
  cfg.target_utilization = u;
  cfg.n_tasks = n;
  return cfg;
}

TEST(TaskSetGenerator, HitsTargetUtilizationExactly) {
  TaskSetGenerator gen(config(0.4));
  util::Xoshiro256ss rng(1);
  for (int i = 0; i < 50; ++i) {
    const TaskSet set = gen.generate(rng);
    EXPECT_NEAR(set.utilization(), 0.4, 1e-9);
  }
}

TEST(TaskSetGenerator, ProducesRequestedTaskCount) {
  TaskSetGenerator gen(config(0.3, 8));
  util::Xoshiro256ss rng(2);
  EXPECT_EQ(gen.generate(rng).size(), 8u);
}

TEST(TaskSetGenerator, PeriodsComeFromPaperChoices) {
  TaskSetGenerator gen(config());
  util::Xoshiro256ss rng(3);
  for (int i = 0; i < 20; ++i) {
    for (const Task& t : gen.generate(rng)) {
      const double r = t.period / 10.0;
      EXPECT_NEAR(r, std::round(r), 1e-12);
      EXPECT_GE(t.period, 10.0);
      EXPECT_LE(t.period, 100.0);
    }
  }
}

TEST(TaskSetGenerator, AllPeriodsGetSelectedEventually) {
  TaskSetGenerator gen(config(0.2, 10));
  util::Xoshiro256ss rng(4);
  std::set<double> seen;
  for (int i = 0; i < 100; ++i)
    for (const Task& t : gen.generate(rng)) seen.insert(t.period);
  EXPECT_EQ(seen.size(), 10u);
}

TEST(TaskSetGenerator, DeadlineEqualsPeriod) {
  TaskSetGenerator gen(config());
  util::Xoshiro256ss rng(5);
  for (const Task& t : gen.generate(rng))
    EXPECT_DOUBLE_EQ(t.relative_deadline, t.period);
}

TEST(TaskSetGenerator, WcetNeverExceedsPeriod) {
  TaskSetGenerator gen(config(0.9, 3));
  util::Xoshiro256ss rng(6);
  for (int i = 0; i < 100; ++i)
    for (const Task& t : gen.generate(rng)) EXPECT_LE(t.wcet, t.period);
}

TEST(TaskSetGenerator, DeterministicGivenRngState) {
  TaskSetGenerator gen(config());
  util::Xoshiro256ss a(42), b(42);
  const TaskSet sa = gen.generate(a);
  const TaskSet sb = gen.generate(b);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_DOUBLE_EQ(sa.at(i).period, sb.at(i).period);
    EXPECT_DOUBLE_EQ(sa.at(i).wcet, sb.at(i).wcet);
  }
}

TEST(TaskSetGenerator, SuccessiveDrawsDiffer) {
  TaskSetGenerator gen(config());
  util::Xoshiro256ss rng(7);
  const TaskSet a = gen.generate(rng);
  const TaskSet b = gen.generate(rng);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a.at(i).wcet != b.at(i).wcet || a.at(i).period != b.at(i).period)
      any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(TaskSetGenerator, SynchronousReleaseByDefault) {
  TaskSetGenerator gen(config());
  util::Xoshiro256ss rng(8);
  for (const Task& t : gen.generate(rng)) EXPECT_DOUBLE_EQ(t.phase, 0.0);
}

TEST(TaskSetGenerator, HighUtilizationStillGenerates) {
  // U = 1.0 with few tasks requires redraws but must succeed.
  TaskSetGenerator gen(config(1.0, 5));
  util::Xoshiro256ss rng(9);
  const TaskSet set = gen.generate(rng);
  EXPECT_NEAR(set.utilization(), 1.0, 1e-9);
}

TEST(TaskSetGenerator, ConfigValidation) {
  GeneratorConfig bad = config();
  bad.n_tasks = 0;
  EXPECT_THROW(TaskSetGenerator{bad}, std::invalid_argument);
  bad = config();
  bad.target_utilization = 0.0;
  EXPECT_THROW(TaskSetGenerator{bad}, std::invalid_argument);
  bad = config();
  bad.target_utilization = 1.2;
  EXPECT_THROW(TaskSetGenerator{bad}, std::invalid_argument);
  bad = config();
  bad.mean_harvest_power = 0.0;
  EXPECT_THROW(TaskSetGenerator{bad}, std::invalid_argument);
  bad = config();
  bad.p_max = 0.0;
  EXPECT_THROW(TaskSetGenerator{bad}, std::invalid_argument);
  bad = config();
  bad.period_choices.clear();
  EXPECT_THROW(TaskSetGenerator{bad}, std::invalid_argument);
  bad = config();
  bad.period_choices = {10.0, -5.0};
  EXPECT_THROW(TaskSetGenerator{bad}, std::invalid_argument);
}

TEST(TaskSetGenerator, TaskIdsAreSequential) {
  TaskSetGenerator gen(config(0.5, 4));
  util::Xoshiro256ss rng(10);
  const TaskSet set = gen.generate(rng);
  for (std::size_t i = 0; i < set.size(); ++i)
    EXPECT_EQ(set.at(i).id, static_cast<TaskId>(i));
}

}  // namespace
}  // namespace eadvfs::task
