#include "task/releaser.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace eadvfs::task {
namespace {

Task make_task(TaskId id, Time period, Work wcet, Time phase = 0.0) {
  Task t;
  t.id = id;
  t.period = period;
  t.relative_deadline = period;
  t.wcet = wcet;
  t.phase = phase;
  return t;
}

TEST(JobReleaser, PeriodicReleaseCountWithinHorizon) {
  JobReleaser r(TaskSet({make_task(0, 10, 1)}), 100.0);
  // Releases at 0, 10, ..., 90.
  EXPECT_EQ(r.total_jobs(), 10u);
}

TEST(JobReleaser, MultipleTasksInterleave) {
  JobReleaser r(TaskSet({make_task(0, 10, 1), make_task(1, 25, 2)}), 50.0);
  EXPECT_EQ(r.total_jobs(), 5u + 2u);
}

TEST(JobReleaser, NextArrivalIsEarliestPending) {
  JobReleaser r(TaskSet({make_task(0, 10, 1, 3.0)}), 50.0);
  EXPECT_DOUBLE_EQ(r.next_arrival(), 3.0);
}

TEST(JobReleaser, ReleaseDuePopsInOrder) {
  JobReleaser r(TaskSet({make_task(0, 10, 1), make_task(1, 15, 2)}), 40.0);
  auto due0 = r.release_due(0.0);
  ASSERT_EQ(due0.size(), 2u);  // both tasks release at t=0
  auto due10 = r.release_due(10.0);
  ASSERT_EQ(due10.size(), 1u);
  EXPECT_EQ(due10[0].task_id, 0u);
  EXPECT_DOUBLE_EQ(due10[0].arrival, 10.0);
}

TEST(JobReleaser, ReleaseDueWithNothingDueReturnsEmpty) {
  JobReleaser r(TaskSet({make_task(0, 10, 1, 5.0)}), 50.0);
  EXPECT_TRUE(r.release_due(4.9).empty());
}

TEST(JobReleaser, JobFieldsPopulatedFromTask) {
  JobReleaser r(TaskSet({make_task(3, 20, 2.5)}), 50.0);
  const auto jobs = r.release_due(0.0);
  ASSERT_EQ(jobs.size(), 1u);
  const Job& j = jobs[0];
  EXPECT_EQ(j.task_id, 3u);
  EXPECT_EQ(j.sequence, 0u);
  EXPECT_DOUBLE_EQ(j.arrival, 0.0);
  EXPECT_DOUBLE_EQ(j.absolute_deadline, 20.0);
  EXPECT_DOUBLE_EQ(j.wcet, 2.5);
  EXPECT_DOUBLE_EQ(j.remaining, 2.5);
  EXPECT_FALSE(j.finished());
}

TEST(JobReleaser, SequenceNumbersIncrease) {
  JobReleaser r(TaskSet({make_task(0, 10, 1)}), 35.0);
  (void)r.release_due(0.0);
  const auto second = r.release_due(10.0);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].sequence, 1u);
  const auto third = r.release_due(20.0);
  EXPECT_EQ(third[0].sequence, 2u);
}

TEST(JobReleaser, JobIdsAreUnique) {
  JobReleaser r(TaskSet({make_task(0, 10, 1), make_task(1, 10, 1)}), 50.0);
  std::set<JobId> ids;
  while (!r.exhausted()) {
    for (const Job& j : r.release_due(r.next_arrival())) ids.insert(j.id);
  }
  EXPECT_EQ(ids.size(), 10u);
}

TEST(JobReleaser, ExhaustionAndSentinel) {
  JobReleaser r(TaskSet({make_task(0, 60, 1)}), 100.0);
  EXPECT_FALSE(r.exhausted());
  (void)r.release_due(0.0);
  (void)r.release_due(60.0);
  EXPECT_TRUE(r.exhausted());
  EXPECT_GE(r.next_arrival(), 1e250);
}

TEST(JobReleaser, PhaseDelaysFirstRelease) {
  JobReleaser r(TaskSet({make_task(0, 10, 1, 7.0)}), 30.0);
  // Releases at 7, 17, 27.
  EXPECT_EQ(r.total_jobs(), 3u);
  EXPECT_TRUE(r.release_due(6.9).empty());
  EXPECT_EQ(r.release_due(7.0).size(), 1u);
}

TEST(JobReleaser, ExplicitJobList) {
  Job j1;
  j1.arrival = 5.0;
  j1.absolute_deadline = 21.0;
  j1.wcet = 1.5;
  Job j2;
  j2.arrival = 0.0;
  j2.absolute_deadline = 16.0;
  j2.wcet = 4.0;
  JobReleaser r(std::vector<Job>{j1, j2});
  EXPECT_EQ(r.total_jobs(), 2u);
  EXPECT_DOUBLE_EQ(r.next_arrival(), 0.0);  // sorted by arrival
  const auto first = r.release_due(0.0);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_DOUBLE_EQ(first[0].wcet, 4.0);
  EXPECT_DOUBLE_EQ(first[0].remaining, 4.0);
}

TEST(JobReleaser, ExplicitJobValidation) {
  Job bad;
  bad.arrival = 5.0;
  bad.absolute_deadline = 4.0;  // deadline before arrival
  EXPECT_THROW(JobReleaser{std::vector<Job>{bad}}, std::invalid_argument);
  Job negative;
  negative.wcet = -1.0;
  negative.absolute_deadline = 1.0;
  EXPECT_THROW(JobReleaser{std::vector<Job>{negative}}, std::invalid_argument);
}

TEST(JobReleaser, HorizonValidation) {
  EXPECT_THROW(JobReleaser(TaskSet({make_task(0, 10, 1)}), 0.0),
               std::invalid_argument);
}

TEST(EdfBefore, OrdersByDeadlineThenArrivalThenId) {
  Job early, late, tie;
  early.id = 2;
  early.absolute_deadline = 10.0;
  late.id = 1;
  late.absolute_deadline = 20.0;
  tie.id = 3;
  tie.absolute_deadline = 10.0;
  tie.arrival = 1.0;
  EdfBefore less;
  EXPECT_TRUE(less(early, late));
  EXPECT_FALSE(less(late, early));
  EXPECT_TRUE(less(early, tie));  // same deadline, earlier arrival wins
}

}  // namespace
}  // namespace eadvfs::task
