#include "task/task_set.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace eadvfs::task {
namespace {

Task make_task(TaskId id, Time period, Work wcet) {
  Task t;
  t.id = id;
  t.period = period;
  t.relative_deadline = period;
  t.wcet = wcet;
  return t;
}

TEST(Task, UtilizationIsWcetOverPeriod) {
  EXPECT_DOUBLE_EQ(make_task(0, 10.0, 2.5).utilization(), 0.25);
}

TEST(TaskSet, UtilizationSumsOverTasks) {
  TaskSet set({make_task(0, 10, 2), make_task(1, 20, 4)});
  EXPECT_DOUBLE_EQ(set.utilization(), 0.4);
}

TEST(TaskSet, EmptySetHasZeroUtilization) {
  TaskSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_DOUBLE_EQ(set.utilization(), 0.0);
}

TEST(TaskSet, ScaleToUtilizationIsExact) {
  TaskSet set({make_task(0, 10, 2), make_task(1, 20, 4)});
  set.scale_to_utilization(0.8);
  EXPECT_NEAR(set.utilization(), 0.8, 1e-12);
  // Each WCET scaled by the same ratio (0.8/0.4 = 2).
  EXPECT_DOUBLE_EQ(set.at(0).wcet, 4.0);
  EXPECT_DOUBLE_EQ(set.at(1).wcet, 8.0);
}

TEST(TaskSet, ScaleDownWorksToo) {
  TaskSet set({make_task(0, 10, 5)});
  set.scale_to_utilization(0.1);
  EXPECT_DOUBLE_EQ(set.at(0).wcet, 1.0);
}

TEST(TaskSet, ScaleRejectsInfeasibleTarget) {
  // Task with wcet 5, period 10: scale beyond 2x pushes wcet > period.
  TaskSet set({make_task(0, 10, 5)});
  EXPECT_THROW(set.scale_to_utilization(1.0 + 1e-6), std::invalid_argument);
  // And the failed call must not have mutated the set.
  EXPECT_DOUBLE_EQ(set.at(0).wcet, 5.0);
}

TEST(TaskSet, MaxFeasibleUtilization) {
  TaskSet set({make_task(0, 10, 2), make_task(1, 20, 4)});
  // Scale limited by task 0: window/wcet = 5 and task 1: 5 -> max scale 5.
  EXPECT_NEAR(set.max_feasible_utilization(), 0.4 * 5.0, 1e-12);
}

TEST(TaskSet, ScaleValidation) {
  TaskSet set({make_task(0, 10, 2)});
  EXPECT_THROW(set.scale_to_utilization(0.0), std::invalid_argument);
  EXPECT_THROW(set.scale_to_utilization(-0.3), std::invalid_argument);
  TaskSet zero({make_task(0, 10, 0)});
  EXPECT_THROW(zero.scale_to_utilization(0.5), std::logic_error);
}

TEST(TaskSet, ConstructionValidation) {
  Task bad = make_task(0, 10, 2);
  bad.period = 0.0;
  EXPECT_THROW(TaskSet{std::vector<Task>{bad}}, std::invalid_argument);
  bad = make_task(0, 10, 2);
  bad.relative_deadline = -1.0;
  EXPECT_THROW(TaskSet{std::vector<Task>{bad}}, std::invalid_argument);
  bad = make_task(0, 10, -2);
  EXPECT_THROW(TaskSet{std::vector<Task>{bad}}, std::invalid_argument);
  bad = make_task(0, 10, 11);  // wcet > period: never schedulable
  EXPECT_THROW(TaskSet{std::vector<Task>{bad}}, std::invalid_argument);
  bad = make_task(0, 10, 2);
  bad.phase = -1.0;
  EXPECT_THROW(TaskSet{std::vector<Task>{bad}}, std::invalid_argument);
}

TEST(TaskSet, DeadlineShorterThanPeriodConstrainsWcet) {
  Task constrained = make_task(0, 10, 4);
  constrained.relative_deadline = 3.0;  // wcet 4 > deadline 3
  EXPECT_THROW(TaskSet{std::vector<Task>{constrained}}, std::invalid_argument);
  constrained.wcet = 3.0;
  EXPECT_NO_THROW(TaskSet{std::vector<Task>{constrained}});
}

TEST(TaskSet, DescribeMentionsEveryTask) {
  TaskSet set({make_task(3, 10, 2), make_task(7, 20, 4)});
  const std::string text = set.describe();
  EXPECT_NE(text.find("id=3"), std::string::npos);
  EXPECT_NE(text.find("id=7"), std::string::npos);
  EXPECT_NE(text.find("U=0.4"), std::string::npos);
}

TEST(TaskSet, IterationVisitsAllTasks) {
  TaskSet set({make_task(0, 10, 1), make_task(1, 20, 1), make_task(2, 30, 1)});
  std::size_t count = 0;
  for (const Task& t : set) {
    EXPECT_EQ(t.id, count);
    ++count;
  }
  EXPECT_EQ(count, 3u);
}

}  // namespace
}  // namespace eadvfs::task
